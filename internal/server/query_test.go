package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"neograph"
	"neograph/internal/wire"
)

// startServerWithDB is startServer with the DB handle exposed, for tests
// that populate the graph embedded (fast) and query it over the wire.
func startServerWithDB(t *testing.T) (*neograph.DB, *Server) {
	t.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	return db, srv
}

// seedNodes creates n labeled nodes embedded and returns their IDs.
func seedNodes(t *testing.T, db *neograph.DB, n int) []neograph.NodeID {
	t.Helper()
	ids := make([]neograph.NodeID, n)
	err := db.Update(0, func(tx *neograph.Tx) error {
		for i := range ids {
			var err error
			ids[i], err = tx.CreateNode([]string{"S"}, nil)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestQueryStreamFrames drives a multi-chunk stream at the wire level:
// full chunks with More set, a final frame with the remainder and More
// unset, every frame echoing the request's seq — and the session stays
// usable afterwards.
func TestQueryStreamFrames(t *testing.T) {
	db, srv := startServerWithDB(t)
	const n = wire.QueryChunkRows*2 + 76
	seedNodes(t, db, n)

	conn := rawConn(t, srv)
	if _, err := conn.Write([]byte(`{"op":"query","seq":7,"plan":{"seed":{"all":true}}}` + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	dec := json.NewDecoder(conn)
	total, frames := 0, 0
	for {
		var resp wire.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		if !resp.OK {
			t.Fatalf("frame %d error: %s", frames, resp.Error)
		}
		if resp.Seq != 7 {
			t.Fatalf("frame %d seq = %d, want 7", frames, resp.Seq)
		}
		total += len(resp.Rows)
		if !resp.More {
			if len(resp.Rows) != 76 {
				t.Errorf("final frame carried %d rows, want the remainder 76", len(resp.Rows))
			}
			break
		}
		if len(resp.Rows) != wire.QueryChunkRows {
			t.Errorf("chunk frame %d carried %d rows, want %d", frames, len(resp.Rows), wire.QueryChunkRows)
		}
	}
	if total != n || frames != 3 {
		t.Fatalf("stream = %d rows in %d frames, want %d in 3", total, frames, n)
	}
	// The stream ended on a frame boundary: the session serves the next
	// request normally.
	if resp := sendRaw(t, conn, `{"op":"ping","seq":8}`); !resp.OK || resp.Seq != 8 {
		t.Fatalf("session unusable after stream: %+v", resp)
	}
}

// TestQueryStreamRejectsBadPlan checks an invalid plan costs exactly one
// complete error frame (a valid zero-chunk stream) and the session
// survives.
func TestQueryStreamRejectsBadPlan(t *testing.T) {
	_, srv := startServerWithDB(t)
	conn := rawConn(t, srv)
	resp := sendRaw(t, conn, `{"op":"query","seq":3,"plan":{"seed":{"ids":[1]},"stages":[{"op":"khop","depth":0}]}}`)
	if resp.OK || resp.More || resp.Seq != 3 || !strings.Contains(resp.Error, "depth") {
		t.Fatalf("bad plan response: %+v", resp)
	}
	if resp := sendRaw(t, conn, `{"op":"ping","seq":4}`); !resp.OK {
		t.Fatalf("session dead after rejected plan: %+v", resp)
	}
}

// TestQueryStreamDrainCleanFrame is the streaming arm of the PR 5
// torn-response regression: a drain that expires while a query stream is
// in flight must terminate it with a complete, structured error frame —
// never a torn chunk. net.Pipe makes the sequencing deterministic: the
// handler blocks writing chunk 1, the test starts the drain past its
// shed point, and the next frame on the wire must be the clean error.
func TestQueryStreamDrainCleanFrame(t *testing.T) {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	seedNodes(t, db, wire.QueryChunkRows*3)

	srv := &Server{db: db}
	sess := &session{db: db, srv: srv}
	cl, sv := net.Pipe()
	t.Cleanup(func() { cl.Close(); sv.Close() })
	done := make(chan error, 1)
	go func() {
		done <- sess.streamQuery(sv, json.NewEncoder(sv), &wire.Request{
			Op: wire.OpQuery, Seq: 9,
			Plan: &wire.QueryPlan{Seed: wire.QuerySeed{All: true}},
		})
	}()

	// Wait until the handler is demonstrably mid-write of chunk 1: the
	// pipe is unbuffered, so the first byte arriving means the chunk was
	// composed and its Write is in flight. THEN expire the drain: chunk 1
	// must still arrive whole (it is the in-flight response the drain
	// grace protects), and the next chunk boundary must shed with the
	// clean error instead of emitting chunk 2.
	cl.SetReadDeadline(time.Now().Add(10 * time.Second))
	first := make([]byte, 1)
	if _, err := io.ReadFull(cl, first); err != nil {
		t.Fatal(err)
	}
	srv.mu.Lock()
	srv.shedAt = time.Now().Add(-time.Millisecond)
	srv.mu.Unlock()
	srv.draining.Store(true)

	dec := json.NewDecoder(io.MultiReader(bytes.NewReader(first), cl))
	var chunk wire.Response
	if err := dec.Decode(&chunk); err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	if !chunk.OK || !chunk.More || len(chunk.Rows) != wire.QueryChunkRows || chunk.Seq != 9 {
		t.Fatalf("chunk 1 = ok=%v more=%v rows=%d seq=%d", chunk.OK, chunk.More, len(chunk.Rows), chunk.Seq)
	}
	var final wire.Response
	if err := dec.Decode(&final); err != nil {
		t.Fatalf("final frame torn: %v", err)
	}
	if final.OK || final.More || final.Code != wire.CodeUnavailable || final.Seq != 9 {
		t.Fatalf("final frame = ok=%v more=%v code=%q seq=%d, want clean unavailable error",
			final.OK, final.More, final.Code, final.Seq)
	}
	if err := <-done; err != nil {
		t.Fatalf("streamQuery write error: %v", err)
	}
}

// TestQueryStreamDeadlineCleanFrame: a deadline_ms budget that expires
// mid-stream ends it with a structured deadline error frame.
func TestQueryStreamDeadlineCleanFrame(t *testing.T) {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	seedNodes(t, db, wire.QueryChunkRows*2)

	sess := &session{db: db, srv: &Server{db: db}}
	cl, sv := net.Pipe()
	t.Cleanup(func() { cl.Close(); sv.Close() })
	done := make(chan error, 1)
	go func() {
		done <- sess.streamQuery(sv, json.NewEncoder(sv), &wire.Request{
			Op: wire.OpQuery, Seq: 1, DeadlineMS: 30,
			Plan: &wire.QueryPlan{Seed: wire.QuerySeed{All: true}},
		})
	}()
	// Stall past the budget while the handler blocks on chunk 1; the
	// boundary check before chunk 2 must fail the stream cleanly.
	time.Sleep(60 * time.Millisecond)
	cl.SetReadDeadline(time.Now().Add(10 * time.Second))
	dec := json.NewDecoder(cl)
	var chunk, final wire.Response
	if err := dec.Decode(&chunk); err != nil || !chunk.OK {
		t.Fatalf("chunk 1: %v %+v", err, chunk)
	}
	if err := dec.Decode(&final); err != nil {
		t.Fatalf("final frame torn: %v", err)
	}
	if final.OK || final.Code != wire.CodeDeadline {
		t.Fatalf("final frame = ok=%v code=%q, want deadline error", final.OK, final.Code)
	}
	<-done
}

// TestQueryBatchRefsServer is the batch back-reference regression: a
// node and an edge to it created in ONE batch round trip, and the
// structured abort when a reference names an op that created nothing.
func TestQueryBatchRefsServer(t *testing.T) {
	_, srv := startServerWithDB(t)
	conn := rawConn(t, srv)

	resp := sendRaw(t, conn, `{"op":"batch","seq":1,"batch":[`+
		`{"op":"create_node","labels":["A"]},`+
		`{"op":"create_node","labels":["B"]},`+
		`{"op":"create_rel","type":"KNOWS","start_ref":0,"end_ref":1},`+
		`{"op":"set_node_prop","id_ref":0,"key":"k","value":{"i":"7"}}]}`)
	if !resp.OK {
		t.Fatalf("ref batch failed: %s", resp.Error)
	}
	a, b, rel := resp.Results[0].ID, resp.Results[1].ID, resp.Results[2].ID
	// The edge really connects the two batch-created nodes.
	check := sendRaw(t, conn, fmt.Sprintf(`{"op":"get_rel","seq":2,"id":%d}`, rel))
	if !check.OK || check.Rel.Start != a || check.Rel.End != b {
		t.Fatalf("rel = %+v, want %d->%d", check.Rel, a, b)
	}

	// A reference to an op that created no entity aborts the batch with
	// the failing op named.
	resp = sendRaw(t, conn, `{"op":"batch","seq":3,"batch":[`+
		`{"op":"all_nodes"},`+
		`{"op":"set_node_prop","id_ref":0,"key":"k","value":{"i":"1"}}]}`)
	if resp.OK || resp.FailedOp == nil || *resp.FailedOp != 1 ||
		!strings.Contains(resp.Error, "did not create an entity") {
		t.Fatalf("non-creating ref response: %+v", resp)
	}

	// Out-of-range references are rejected at validation, before any op
	// runs.
	resp = sendRaw(t, conn, `{"op":"batch","seq":4,"batch":[`+
		`{"op":"create_rel","type":"R","start_ref":0,"end_ref":0}]}`)
	if resp.OK || !strings.Contains(resp.Error, "out of range") {
		t.Fatalf("self-ref response: %+v", resp)
	}

	// Refs outside a batch are meaningless and rejected.
	resp = sendRaw(t, conn, `{"op":"set_node_prop","seq":5,"id_ref":0,"key":"k","value":{"i":"1"}}`)
	if resp.OK || !strings.Contains(resp.Error, "inside a batch") {
		t.Fatalf("top-level ref response: %+v", resp)
	}
}

// TestQueryReplicaServes checks the query op is replica-eligible: a
// read-only plan streams from a replica session, gated on the primary's
// commit LSN (read-your-writes).
func TestQueryReplicaServes(t *testing.T) {
	primary, replica, _, _ := startReplicatedPair(t)
	if _, err := primary.CreateNode([]string{"Q"}, nil); err != nil {
		t.Fatal(err)
	}
	token := primary.LastCommitLSN()

	conn := rawConnAddr(t, replica.RemoteAddr().String())
	resp := sendRaw(t, conn, fmt.Sprintf(
		`{"op":"query","seq":1,"wait_lsn":%d,"plan":{"seed":{"label":"Q"},"stages":[{"op":"count"}]}}`, token))
	if !resp.OK || resp.More {
		t.Fatalf("replica query: %+v", resp)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Count != 1 {
		t.Fatalf("replica query rows = %+v, want one count row of 1", resp.Rows)
	}
}
