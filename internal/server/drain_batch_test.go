package server

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"neograph"
	"neograph/internal/wire"
)

// ---- graceful drain (Close must never tear a response mid-frame) ----

// TestCloseDrainsInFlightResponse is the torn-response regression test:
// a handler blocked in WaitLSN gating when Close begins must still
// deliver its complete, successful response once the gate opens — the
// old Close hard-closed the connection and cut the frame.
func TestCloseDrainsInFlightResponse(t *testing.T) {
	pdb, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	if err := pdb.Update(0, func(tx *neograph.Tx) error {
		_, err := tx.CreateNode([]string{"Seed"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rdb, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicaOf: pdb.ReplicationAddress()})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.WaitApplied(pdb.DurableLSN(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	rsrv, err := New(rdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	// Gate one byte past the replicated horizon: unreachable until the
	// primary commits again.
	gate := pdb.DurableLSN() + 1
	cl, err := Dial(rsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.ReadAfter(gate)

	type result struct {
		ids []neograph.NodeID
		err error
	}
	resc := make(chan result, 1)
	go func() {
		ids, err := cl.AllNodes() // blocks server-side on the gate
		resc <- result{ids, err}
	}()
	time.Sleep(150 * time.Millisecond) // handler is now parked in the gate

	closed := make(chan error, 1)
	go func() { closed <- rsrv.Close() }()
	time.Sleep(150 * time.Millisecond) // drain has begun, handler still parked

	// Open the gate: the commit replicates, the handler finishes and must
	// flush its full response even though the server is draining.
	if err := pdb.Update(0, func(tx *neograph.Tx) error {
		_, err := tx.CreateNode([]string{"Late"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("in-flight response torn by Close: %v", r.err)
		}
		if len(r.ids) != 2 {
			t.Fatalf("in-flight response ids = %v, want 2 nodes", r.ids)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight response never arrived")
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after handlers drained")
	}
}

// TestCloseShedsGatedWaiters: a handler parked on an unreachable gate
// must not hold Close for the full WaitLSN timeout — the drain-aware
// gate sheds it promptly with a complete error response.
func TestCloseShedsGatedWaiters(t *testing.T) {
	pdb, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pdb.Update(0, func(tx *neograph.Tx) error {
		_, err := tx.CreateNode(nil, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	rdb, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicaOf: pdb.ReplicationAddress()})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if err := rdb.WaitApplied(pdb.DurableLSN(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	gate := pdb.DurableLSN() + 1
	pdb.Close() // gate is now unreachable forever

	rsrv, err := New(rdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv.DrainGrace = 500 * time.Millisecond
	cl, err := Dial(rsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.ReadAfter(gate)
	errc := make(chan error, 1)
	go func() {
		_, err := cl.AllNodes()
		errc <- err
	}()
	time.Sleep(150 * time.Millisecond)

	t0 := time.Now()
	if err := rsrv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("Close held %v by a gated waiter (want prompt shed)", elapsed)
	}
	// The shed waiter received a complete error response, not a torn frame.
	err = <-errc
	if err == nil {
		t.Fatal("gated read succeeded past an unreachable gate")
	}
	if !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("shed waiter got %v, want a well-formed shutting-down error", err)
	}
}

// TestCloseHardClosesAfterGrace: a handler stuck past DrainGrace (a
// session mid-request that never completes) must not block Close forever.
func TestCloseHardClosesAfterGrace(t *testing.T) {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv, err := New(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.DrainGrace = 300 * time.Millisecond
	// A half-written request parks the decoder mid-frame; the session is
	// neither idle nor producing a response.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"pi`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("Close blocked %v on a wedged session", elapsed)
	}
}

// ---- batch wire op: protocol-level error paths ----

// sendRaw writes one raw JSON frame and decodes one response.
func sendRaw(t *testing.T, conn net.Conn, frame string) *wire.Response {
	t.Helper()
	if _, err := conn.Write([]byte(frame + "\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	dec := json.NewDecoder(conn)
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode response to %q: %v", frame, err)
	}
	return &resp
}

func TestBatchMalformedRejectedSessionSurvives(t *testing.T) {
	srv, _ := startServer(t)
	conn := rawConn(t, srv)

	for _, bad := range []struct{ name, frame string }{
		{"empty", `{"op":"batch"}`},
		{"nested", `{"op":"batch","batch":[{"op":"batch","batch":[{"op":"ping"}]}]}`},
		{"session-control", `{"op":"batch","batch":[{"op":"begin"}]}`},
		{"admin", `{"op":"batch","batch":[{"op":"promote"}]}`},
		{"per-op-gate", `{"op":"batch","batch":[{"op":"ping","wait_lsn":5}]}`},
		{"unknown-sub-op", `{"op":"batch","batch":[{"op":"no_such_op"}]}`},
	} {
		resp := sendRaw(t, conn, bad.frame)
		if resp.OK {
			t.Errorf("%s batch accepted", bad.name)
		}
	}
	// The same session still serves good requests — a bad batch is an
	// error response, not a hangup.
	if resp := sendRaw(t, conn, `{"op":"ping"}`); !resp.OK {
		t.Fatalf("session dead after rejected batches: %s", resp.Error)
	}
}

func TestBatchOversizedRejected(t *testing.T) {
	srv, _ := startServer(t)
	conn := rawConn(t, srv)
	var sb strings.Builder
	sb.WriteString(`{"op":"batch","batch":[`)
	for i := 0; i <= wire.MaxBatchOps; i++ { // one past the limit
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"op":"ping"}`)
	}
	sb.WriteString(`]}`)
	resp := sendRaw(t, conn, sb.String())
	if resp.OK {
		t.Fatal("oversized batch accepted")
	}
	if !strings.Contains(resp.Error, "exceeds limit") {
		t.Errorf("oversized batch error = %q", resp.Error)
	}
	if resp := sendRaw(t, conn, `{"op":"ping"}`); !resp.OK {
		t.Fatalf("session dead after oversized batch: %s", resp.Error)
	}
}

// rawConnAddr dials an address directly for protocol-level abuse when
// only a client (not the *Server) is in hand.
func rawConnAddr(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestBatchOnReplicaRejectsWrites(t *testing.T) {
	_, replica, _, _ := startReplicatedPair(t)
	conn := rawConnAddr(t, replica.RemoteAddr().String())
	resp := sendRaw(t, conn,
		`{"op":"batch","batch":[{"op":"get_node","id":0},{"op":"create_node"}]}`)
	if resp.OK {
		t.Fatal("replica accepted a batch containing a write")
	}
	if !strings.Contains(resp.Error, "read-only") && !strings.Contains(resp.Error, "primary") {
		t.Errorf("replica batch rejection = %q, want a redirect error", resp.Error)
	}
}

// TestBatchCommitLSNGatesReplicaRead: the single LSN a committed batch
// returns is a valid read-your-writes token on a replica.
func TestBatchCommitLSNGatesReplicaRead(t *testing.T) {
	primary, replica, _, _ := startReplicatedPair(t)
	conn := rawConnAddr(t, primary.RemoteAddr().String())
	resp := sendRaw(t, conn,
		`{"op":"batch","batch":[{"op":"create_node","labels":["B"]},{"op":"create_node","labels":["B"]}]}`)
	if !resp.OK {
		t.Fatalf("batch failed: %s", resp.Error)
	}
	if resp.LSN == 0 {
		t.Fatal("batch returned no commit LSN")
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch results = %d", len(resp.Results))
	}
	replica.ReadAfter(resp.LSN)
	ids, err := replica.NodesByLabel("B")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("replica saw %d batch nodes, want 2", len(ids))
	}
}
