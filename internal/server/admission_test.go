package server

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neograph"
	"neograph/internal/metrics"
	"neograph/internal/wire"
)

// startAdmissionServer spins up an in-memory DB behind a server with the
// given admission budgets.
func startAdmissionServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(db, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	return srv
}

// rawSession opens one wire-level session for hand-built frames.
func rawSession(t *testing.T, addr string) (*json.Encoder, *json.Decoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return json.NewEncoder(conn), json.NewDecoder(conn)
}

// TestAdmissionOversizedFrameRejected: a single frame larger than
// MaxQueuedBytes is deterministically rejected with the structured
// overloaded code, the session survives, and the budget gauges return to
// zero — the clean-rejection contract.
func TestAdmissionOversizedFrameRejected(t *testing.T) {
	srv := startAdmissionServer(t, Config{MaxQueuedBytes: 256})
	enc, dec := rawSession(t, srv.Addr())

	big := &wire.Request{Op: wire.OpCreateNode, Props: mustProps(t, neograph.Props{
		"blob": neograph.String(strings.Repeat("x", 1024)),
	})}
	if err := enc.Encode(big); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != wire.CodeOverloaded {
		t.Fatalf("oversized frame: got ok=%v code=%q, want overloaded rejection", resp.OK, resp.Code)
	}

	// The session must survive the rejection: a small frame goes through.
	if err := enc.Encode(&wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	resp = wire.Response{}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("ping after rejection failed: %s", resp.Error)
	}

	ad := srv.Admission()
	if ad.Rejected == 0 {
		t.Error("rejection not counted")
	}
	if ad.Inflight != 0 || ad.QueuedBytes != 0 {
		t.Errorf("budget not fully released: inflight=%d queued=%d", ad.Inflight, ad.QueuedBytes)
	}
	if ad.QueuedBytesPeak > 256 {
		t.Errorf("queued-bytes peak %d exceeds the %d budget", ad.QueuedBytesPeak, 256)
	}
}

func mustProps(t *testing.T, p neograph.Props) json.RawMessage {
	t.Helper()
	raw, err := wire.EncodeProps(p)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAdmissionOverloadBoundedAndRecovers hammers a tightly budgeted
// server from many sessions and asserts the overload contract: admitted
// load never exceeds the budgets (the peaks are exact — only admitted
// requests contribute), the excess is rejected with the structured code
// rather than queued or dropped, and once the load stops the server has
// fully recovered (budget gauges at zero, fresh requests served).
func TestAdmissionOverloadBoundedAndRecovers(t *testing.T) {
	const (
		maxInflight = 2
		maxQueued   = 256 << 10
		hammers     = 16
	)
	srv := startAdmissionServer(t, Config{MaxInflight: maxInflight, MaxQueuedBytes: maxQueued})

	// Each hammer loops a property-bearing 1000-op batch — slow enough to
	// execute that concurrent arrivals exceed MaxInflight and get
	// rejected, even on hardware fast enough to finish a light batch
	// before the next hammer's request lands.
	props := mustProps(t, neograph.Props{"k": neograph.String("0123456789abcdef")})
	batch := &wire.Request{Op: wire.OpBatch}
	for i := 0; i < 1000; i++ {
		batch.Batch = append(batch.Batch, wire.Request{Op: wire.OpCreateNode, Props: props})
	}

	var oks, rejects atomic.Uint64
	var badCodes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := enc.Encode(batch); err != nil {
					return
				}
				var resp wire.Response
				if err := dec.Decode(&resp); err != nil {
					return
				}
				switch {
				case resp.OK:
					oks.Add(1)
				case resp.Code == wire.CodeOverloaded:
					rejects.Add(1)
				default:
					badCodes.Add(1)
				}
			}
		}()
	}

	// Sample the admission state under load until rejections are observed
	// (bounded), asserting the budgets hold at every sample.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ad := srv.Admission()
		if ad.InflightPeak > maxInflight {
			t.Errorf("inflight peak %d exceeds budget %d", ad.InflightPeak, maxInflight)
			break
		}
		if ad.QueuedBytesPeak > maxQueued {
			t.Errorf("queued-bytes peak %d exceeds budget %d", ad.QueuedBytesPeak, maxQueued)
			break
		}
		if rejects.Load() > 0 && oks.Load() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if oks.Load() == 0 {
		t.Error("no request was ever admitted under load")
	}
	if rejects.Load() == 0 {
		t.Error("no request was rejected: overload never triggered")
	}
	if n := badCodes.Load(); n != 0 {
		t.Errorf("%d failures carried a code other than overloaded", n)
	}

	// Full recovery: budgets drained, a fresh session is served.
	ad := srv.Admission()
	if ad.Inflight != 0 || ad.QueuedBytes != 0 {
		t.Errorf("budget not drained after load: inflight=%d queued=%d", ad.Inflight, ad.QueuedBytes)
	}
	enc, dec := rawSession(t, srv.Addr())
	if err := enc.Encode(&wire.Request{Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("ping after overload failed: %s", resp.Error)
	}
}

// TestServerMetricsEndToEnd drives a server carrying a metrics registry
// and asserts the scrape shows live series from every instrumented
// layer: requests, sessions, admission, engine commits, WAL and the
// page cache (persistent mode).
func TestServerMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	db, err := neograph.Open(neograph.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	RegisterDBMetrics(reg, db)
	srv, err := NewWithConfig(db, "127.0.0.1:0", Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.CreateNode([]string{"M"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetNode(id); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"neograph_server_sessions 1",
		`neograph_server_request_seconds_bucket{class="write",le="+Inf"} 1`,
		`neograph_server_request_seconds_bucket{class="read",le="+Inf"} 1`,
		"neograph_server_requests_admitted_total 2",
		"neograph_txn_committed_total",
		"neograph_wal_durable_lsn",
		"neograph_wal_fsync_seconds_bucket",
		`neograph_pagecache_hits_total{file="nodes"}`,
		"neograph_repl_connected 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
