package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"neograph"
)

// startServer spins up an in-memory DB + server and returns a connected
// client.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCommitCRUD(t *testing.T) {
	_, cl := startServer(t)
	id, err := cl.CreateNode([]string{"Person"}, neograph.Props{
		"name": neograph.String("ada"),
		"age":  neograph.Int(36),
		"temp": neograph.Float(36.6),
		"tags": neograph.List(neograph.String("x")),
		"raw":  neograph.Bytes([]byte{1, 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := cl.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(n.Labels, []string{"Person"}) {
		t.Errorf("labels = %v", n.Labels)
	}
	if v, _ := n.Props["age"].AsInt(); v != 36 {
		t.Errorf("age = %v (typed round trip)", n.Props["age"])
	}
	if v, _ := n.Props["temp"].AsFloat(); v != 36.6 {
		t.Errorf("temp = %v", n.Props["temp"])
	}
	if v, _ := n.Props["raw"].AsBytes(); !reflect.DeepEqual(v, []byte{1, 2}) {
		t.Errorf("raw = %v", n.Props["raw"])
	}

	if err := cl.SetNodeProp(id, "age", neograph.Int(37)); err != nil {
		t.Fatal(err)
	}
	n, _ = cl.GetNode(id)
	if v, _ := n.Props["age"].AsInt(); v != 37 {
		t.Errorf("age after set = %v", n.Props["age"])
	}
	if err := cl.AddLabel(id, "Admin"); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveLabel(id, "Person"); err != nil {
		t.Fatal(err)
	}
	n, _ = cl.GetNode(id)
	if !reflect.DeepEqual(n.Labels, []string{"Admin"}) {
		t.Errorf("labels = %v", n.Labels)
	}
	if err := cl.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetNode(id); !errors.Is(err, neograph.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound across the wire", err)
	}
}

func TestRelationshipOps(t *testing.T) {
	_, cl := startServer(t)
	a, _ := cl.CreateNode(nil, nil)
	b, _ := cl.CreateNode(nil, nil)
	r, err := cl.CreateRel("KNOWS", a, b, neograph.Props{"w": neograph.Float(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.GetRel(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "KNOWS" || got.Start != a || got.End != b {
		t.Fatalf("rel = %+v", got)
	}
	rels, err := cl.Relationships(a, "out")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].ID != r {
		t.Fatalf("rels = %+v", rels)
	}
	nbrs, _ := cl.Neighbors(a, "both")
	if !reflect.DeepEqual(nbrs, []neograph.NodeID{b}) {
		t.Fatalf("neighbors = %v", nbrs)
	}
	if err := cl.SetRelProp(r, "w", neograph.Float(0.9)); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteRel(r); err != nil {
		t.Fatal(err)
	}
	if err := cl.DetachDeleteNode(a); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitTransaction(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Begin("si"); err != nil {
		t.Fatal(err)
	}
	id, err := cl.CreateNode([]string{"Tx"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Another session must not see the uncommitted node.
	cl2, err := Dial(mustAddr(t, cl))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.GetNode(id); !errors.Is(err, neograph.ErrNotFound) {
		t.Fatalf("uncommitted node leaked: %v", err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.GetNode(id); err != nil {
		t.Fatalf("committed node invisible: %v", err)
	}
}

// mustAddr digs the server address back out of a client's connection.
func mustAddr(t *testing.T, cl *Client) string {
	t.Helper()
	return cl.RemoteAddr().String()
}

func TestAbortDiscardsAcrossWire(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Begin(""); err != nil {
		t.Fatal(err)
	}
	id, _ := cl.CreateNode(nil, nil)
	if err := cl.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetNode(id); !errors.Is(err, neograph.ErrNotFound) {
		t.Fatalf("aborted node visible: %v", err)
	}
}

func TestSnapshotAcrossSessions(t *testing.T) {
	_, cl := startServer(t)
	id, _ := cl.CreateNode(nil, neograph.Props{"v": neograph.Int(1)})

	reader, err := Dial(mustAddr(t, cl))
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if err := reader.Begin("si"); err != nil {
		t.Fatal(err)
	}
	n1, err := reader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent write through the other session.
	if err := cl.SetNodeProp(id, "v", neograph.Int(2)); err != nil {
		t.Fatal(err)
	}
	n2, err := reader.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := n1.Props["v"].AsInt()
	v2, _ := n2.Props["v"].AsInt()
	if v1 != v2 {
		t.Fatalf("unrepeatable read across the wire: %d -> %d", v1, v2)
	}
	reader.Abort()
}

func TestWriteConflictOverWire(t *testing.T) {
	_, cl := startServer(t)
	id, _ := cl.CreateNode(nil, neograph.Props{"v": neograph.Int(0)})

	cl2, err := Dial(mustAddr(t, cl))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl.Begin("si"); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetNodeProp(id, "v", neograph.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Begin("si"); err != nil {
		t.Fatal(err)
	}
	err = cl2.SetNodeProp(id, "v", neograph.Int(2))
	if !errors.Is(err, neograph.ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict across the wire", err)
	}
	cl2.Abort()
	if err := cl.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupsAndAdmin(t *testing.T) {
	_, cl := startServer(t)
	var want []neograph.NodeID
	for i := 0; i < 3; i++ {
		id, _ := cl.CreateNode([]string{"L"}, neograph.Props{"k": neograph.Int(7)})
		want = append(want, id)
	}
	ids, err := cl.NodesByLabel("L")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("by label = %v, want %v", ids, want)
	}
	ids, err = cl.NodesByProperty("k", neograph.Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("by prop = %v", ids)
	}
	all, _ := cl.AllNodes()
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GC(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv, cl := startServer(t)
	seed, _ := cl.CreateNode(nil, neograph.Props{"n": neograph.Int(0)})
	_ = seed
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				id, err := c.CreateNode([]string{"W"}, neograph.Props{"i": neograph.Int(int64(j))})
				if err != nil {
					errs[i] = err
					return
				}
				if _, err := c.GetNode(id); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	ids, _ := cl.NodesByLabel("W")
	if len(ids) != 8*20 {
		t.Fatalf("created = %d, want 160", len(ids))
	}
}

func TestProtocolErrors(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Commit(); err == nil {
		t.Fatal("commit without begin should fail")
	}
	if err := cl.Begin("banana"); err == nil {
		t.Fatal("bad isolation accepted")
	}
	if err := cl.Begin("si"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Begin("si"); err == nil {
		t.Fatal("double begin accepted")
	}
	cl.Abort()
	if _, err := cl.Relationships(1, "sideways"); err == nil {
		t.Fatal("bad direction accepted")
	}
}

// ---- replication over the wire ----

// startReplicatedPair spins up a persistent primary shipping its WAL and
// a replica server streaming it, returning clients for both.
func startReplicatedPair(t *testing.T) (primary, replica *Client, pdb, rdb *neograph.DB) {
	t.Helper()
	pdb, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	psrv, err := New(pdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close(); pdb.Close() })
	rdb, err = neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicaOf: pdb.ReplicationAddress()})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := New(rdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close(); rdb.Close() })
	primary, err = Dial(psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	replica, err = Dial(rsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	return primary, replica, pdb, rdb
}

func TestReplicaRedirectsWrites(t *testing.T) {
	_, replica, _, _ := startReplicatedPair(t)
	_, err := replica.CreateNode([]string{"X"}, nil)
	if !errors.Is(err, neograph.ErrReadOnlyReplica) {
		t.Fatalf("err = %v, want ErrReadOnlyReplica", err)
	}
	if !strings.Contains(err.Error(), "primary at") {
		t.Fatalf("redirect error does not name the primary: %v", err)
	}
	// Write ops inside an explicit transaction are rejected too.
	if err := replica.Begin("si"); err != nil {
		t.Fatal(err)
	}
	if err := replica.SetNodeProp(1, "k", neograph.Int(1)); !errors.Is(err, neograph.ErrReadOnlyReplica) {
		t.Fatalf("staged write err = %v, want ErrReadOnlyReplica", err)
	}
	if err := replica.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestReadYourWritesAcrossReplica(t *testing.T) {
	primary, replica, _, _ := startReplicatedPair(t)
	id, err := primary.CreateNode([]string{"RYW"}, neograph.Props{"v": neograph.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	token := primary.LastCommitLSN()
	if token == 0 {
		t.Fatal("write response carried no LSN token")
	}
	// Gate replica reads on the token: the read must observe the write.
	replica.ReadAfter(token)
	n, err := replica.GetNode(id)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Props["v"].AsInt(); v != 7 {
		t.Fatalf("replica read v=%v", n.Props["v"])
	}
}

func TestExplicitCommitReturnsLSN(t *testing.T) {
	primary, replica, _, _ := startReplicatedPair(t)
	if err := primary.Begin("si"); err != nil {
		t.Fatal(err)
	}
	id, err := primary.CreateNode(nil, neograph.Props{"v": neograph.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	before := primary.LastCommitLSN()
	if err := primary.Commit(); err != nil {
		t.Fatal(err)
	}
	token := primary.LastCommitLSN()
	if token == 0 || token == before {
		t.Fatalf("commit token = %d (before %d)", token, before)
	}
	replica.ReadAfter(token)
	if _, err := replica.GetNode(id); err != nil {
		t.Fatal(err)
	}
}

func TestReplStatusOp(t *testing.T) {
	primary, replica, _, _ := startReplicatedPair(t)
	// Commit something so positions are non-zero, then gate a replica
	// read to ensure it is connected and caught up before asserting.
	if _, err := primary.CreateNode(nil, nil); err != nil {
		t.Fatal(err)
	}
	replica.ReadAfter(primary.LastCommitLSN())
	if _, err := replica.AllNodes(); err != nil {
		t.Fatal(err)
	}
	var pst, rst neograph.ReplStatus
	raw, err := primary.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &pst); err != nil {
		t.Fatal(err)
	}
	raw, err = replica.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rst); err != nil {
		t.Fatal(err)
	}
	if pst.Role != "primary" || len(pst.Replicas) != 1 {
		t.Fatalf("primary status = %+v", pst)
	}
	if rst.Role != "replica" || !rst.Connected || rst.AppliedLSN < pst.DurableLSN {
		t.Fatalf("replica status = %+v (primary durable %d)", rst, pst.DurableLSN)
	}
}

// TestPromoteOverWire drives failover through the wire protocol: the
// primary dies, the replica server is promoted via the promote op, and
// the same session that was being redirected a moment ago now commits
// writes directly.
func TestPromoteOverWire(t *testing.T) {
	primary, replica, pdb, _ := startReplicatedPair(t)

	id, err := primary.CreateNode([]string{"Pre"}, neograph.Props{"v": neograph.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	replica.ReadAfter(primary.LastCommitLSN())
	if _, err := replica.GetNode(id); err != nil {
		t.Fatal(err)
	}
	replica.ReadAfter(0)
	// Still a replica: writes are redirected.
	if _, err := replica.CreateNode([]string{"X"}, nil); !errors.Is(err, neograph.ErrReadOnlyReplica) {
		t.Fatalf("pre-promotion write err = %v, want ErrReadOnlyReplica", err)
	}

	// Primary dies; promote the replica over the wire.
	if err := pdb.Crash(); err != nil {
		t.Fatal(err)
	}
	raw, err := replica.Promote("127.0.0.1:0")
	if err != nil {
		t.Fatalf("promote op: %v", err)
	}
	var st neograph.ReplStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || st.Epoch != 2 {
		t.Fatalf("post-promotion status = %+v, want primary at epoch 2", st)
	}
	// A second promote must fail cleanly.
	if _, err := replica.Promote(""); err == nil {
		t.Fatal("second promote succeeded")
	}

	// The promoted server now takes writes; history is intact.
	nid, err := replica.CreateNode([]string{"Post"}, neograph.Props{"v": neograph.Int(2)})
	if err != nil {
		t.Fatalf("post-promotion write: %v", err)
	}
	if _, err := replica.GetNode(nid); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.GetNode(id); err != nil {
		t.Fatalf("pre-failover data lost: %v", err)
	}
}

func TestPromoteNonReplicaFails(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Promote(""); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("promote on standalone err = %v, want 'not a replica'", err)
	}
}

func TestWaitLSNBogusTokenFails(t *testing.T) {
	_, cl := startServerPersistent(t)
	if _, err := cl.CreateNode(nil, nil); err != nil {
		t.Fatal(err)
	}
	// A token far beyond the log end must error, not hang or spin.
	cl.ReadAfter(1 << 40)
	if _, err := cl.AllNodes(); err == nil {
		t.Fatal("bogus WaitLSN token succeeded")
	}
	cl.ReadAfter(0)
	if _, err := cl.AllNodes(); err != nil {
		t.Fatal(err)
	}
}

// startServerPersistent is startServer with a durable store (WaitLSN
// gating needs a WAL).
func startServerPersistent(t *testing.T) (*Server, *Client) {
	t.Helper()
	db, err := neograph.Open(neograph.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

// ---- wire-protocol error paths (the server must shed broken sessions
// without wedging) ----

// rawConn dials the server for protocol-level abuse.
func rawConn(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// expectClosed asserts the server hangs up on the connection.
func expectClosed(t *testing.T, conn net.Conn) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				t.Fatal("server kept the session open")
			}
			return
		}
	}
}

// expectAlive asserts the server still accepts and serves new sessions.
func expectAlive(t *testing.T, srv *Server) {
	t.Helper()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("server wedged: %v", err)
	}
}

func TestMalformedFrameClosesSessionOnly(t *testing.T) {
	srv, _ := startServer(t)
	conn := rawConn(t, srv)
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	expectClosed(t, conn)
	expectAlive(t, srv)
}

func TestOversizedPayloadClosesSessionOnly(t *testing.T) {
	srv, _ := startServer(t)
	conn := rawConn(t, srv)
	// Stream a single request frame larger than maxRequestBytes. The
	// server must cut it off rather than buffer it all.
	w := bufio.NewWriterSize(conn, 1<<16)
	w.WriteString(`{"op":"ping","key":"`)
	chunk := strings.Repeat("x", 1<<16)
	written := 0
	for written < maxRequestBytes+(1<<20) {
		if _, err := w.WriteString(chunk); err != nil {
			break // server already hung up mid-stream: exactly the point
		}
		written += len(chunk)
	}
	w.WriteString(`"}`)
	w.Flush()
	expectClosed(t, conn)
	expectAlive(t, srv)
}

func TestMidRequestDisconnectDoesNotWedge(t *testing.T) {
	srv, _ := startServer(t)
	conn := rawConn(t, srv)
	// Half a JSON object, then vanish.
	if _, err := conn.Write([]byte(`{"op":"create_node","labels":["Per`)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	expectAlive(t, srv)
}

func TestOpenTxAbortedOnDisconnect(t *testing.T) {
	srv, cl := startServer(t)
	if err := cl.Begin("si"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateNode([]string{"Orphan"}, nil); err != nil {
		t.Fatal(err)
	}
	cl.Close() // mid-transaction disconnect
	// The staged write must not leak into committed state.
	cl2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	ids, err := cl2.NodesByLabel("Orphan")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("disconnected transaction committed %d nodes", len(ids))
	}
}
