package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neograph"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// TestResponseEchoesSeqAndTraceID: every response frame — success,
// error, and admission rejection — carries the request's seq and trace
// ID back, so a pipelining client can pair frames and a tracing client
// can stitch its span tree without trusting frame order alone.
func TestResponseEchoesSeqAndTraceID(t *testing.T) {
	srv := startAdmissionServer(t, Config{MaxQueuedBytes: 256})
	enc, dec := rawSession(t, srv.Addr())

	send := func(req *wire.Request) wire.Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp wire.Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Success frame.
	resp := send(&wire.Request{Op: wire.OpPing, Seq: 7,
		Trace: &wire.TraceContext{TraceID: "11112222333344445555666677778888", SpanID: "aaaabbbbccccdddd"}})
	if !resp.OK {
		t.Fatalf("ping failed: %s", resp.Error)
	}
	if resp.Seq != 7 {
		t.Errorf("success frame seq = %d, want 7", resp.Seq)
	}
	if resp.TraceID != "11112222333344445555666677778888" {
		t.Errorf("success frame trace id = %q", resp.TraceID)
	}

	// Error frame (unknown op).
	resp = send(&wire.Request{Op: "no_such_op", Seq: 8,
		Trace: &wire.TraceContext{TraceID: "99990000999900009999000099990000"}})
	if resp.OK {
		t.Fatal("unknown op succeeded")
	}
	if resp.Seq != 8 {
		t.Errorf("error frame seq = %d, want 8", resp.Seq)
	}
	if resp.TraceID != "99990000999900009999000099990000" {
		t.Errorf("error frame trace id = %q", resp.TraceID)
	}

	// Admission rejection: the frame never reaches dispatch, yet the
	// rejection still pairs with its request.
	resp = send(&wire.Request{Op: wire.OpCreateNode, Seq: 9,
		Trace: &wire.TraceContext{TraceID: "feedfacefeedfacefeedfacefeedface"},
		Props: mustProps(t, neograph.Props{"blob": neograph.String(strings.Repeat("x", 1024))})})
	if resp.OK {
		t.Fatal("oversized frame admitted")
	}
	if resp.Seq != 9 {
		t.Errorf("rejection frame seq = %d, want 9", resp.Seq)
	}
	if resp.TraceID != "feedfacefeedfacefeedfacefeedface" {
		t.Errorf("rejection frame trace id = %q", resp.TraceID)
	}

	// A request without a trace context gets its seq back and no trace ID.
	resp = send(&wire.Request{Op: wire.OpPing, Seq: 10})
	if !resp.OK || resp.Seq != 10 || resp.TraceID != "" {
		t.Errorf("untraced frame = {ok:%v seq:%d tid:%q}, want {true 10 \"\"}", resp.OK, resp.Seq, resp.TraceID)
	}
}

// TestServerSpanFromClientContext: a request arriving with a
// client-minted trace context is recorded under that trace ID even when
// the server's own head sampling is off, the server.<op> span is
// parented on the client's span, and the trace is retrievable from the
// /debug/traces JSONL handler.
func TestServerSpanFromClientContext(t *testing.T) {
	tracer := trace.New(0, 0) // sample 0: only remote contexts record
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithConfig(db, "127.0.0.1:0", Config{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	enc, dec := rawSession(t, srv.Addr())

	const tid = "0123456789abcdef0123456789abcdef"
	const parent = "00000000deadbeef"
	if err := enc.Encode(&wire.Request{Op: wire.OpPing, Seq: 1,
		Trace: &wire.TraceContext{TraceID: tid, SpanID: parent}}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("ping: %s", resp.Error)
	}

	// The span finishes after the response is written; poll briefly.
	var got *trace.SpanRecord
	deadline := time.Now().Add(2 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		for _, tr := range tracer.Traces() {
			if tr.TraceID != tid {
				continue
			}
			for i, sp := range tr.Spans {
				if sp.Name == "server.ping" {
					got = &tr.Spans[i]
				}
			}
		}
		if got == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got == nil {
		t.Fatalf("no server.ping span recorded under %s; traces: %+v", tid, tracer.Traces())
	}
	if got.Parent != parent {
		t.Errorf("server span parent = %q, want the client span %q", got.Parent, parent)
	}

	rr := httptest.NewRecorder()
	trace.Handler(tracer).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?trace_id="+tid, nil))
	body := rr.Body.String()
	if !strings.Contains(body, tid) || !strings.Contains(body, "server.ping") {
		t.Errorf("/debug/traces JSONL missing the trace:\n%s", body)
	}
}
