package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"neograph/internal/faultfs"
)

func openTestWAL(t *testing.T, opts Options) (*WAL, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, dir
}

func collect(t *testing.T, w *WAL) (lsns []uint64, payloads []string) {
	t.Helper()
	err := w.ForEach(func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestAppendReplay(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	var want []string
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("record-%d", i)
		if _, err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_, got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLSNsMonotonic(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	var prev uint64
	for i := 0; i < 20; i++ {
		lsn, err := w.Append([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= prev {
			t.Fatalf("lsn %d not > previous %d", lsn, prev)
		}
		prev = lsn
	}
	if w.NextLSN() <= prev {
		t.Fatal("NextLSN must exceed last append")
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("one"))
	w.Append([]byte("two"))
	w.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	w2.Append([]byte("three"))
	_, got := collect(t, w2)
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Fatalf("replay after reopen: %v", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	w, dir := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	_, got := collect(t, w)
	if len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestRecordTooLarge(t *testing.T) {
	w, _ := openTestWAL(t, Options{SegmentSize: 32})
	defer w.Close()
	if _, err := w.Append(make([]byte, 64)); err == nil {
		t.Fatal("oversized record should fail")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("good-one"))
	w.Append([]byte("good-two"))
	w.Close()

	// Corrupt the tail: append a valid-looking header with garbage payload.
	segs, _ := listSegments(faultfs.OS{}, dir)
	path := filepath.Join(dir, segmentName(segs[0]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'j', 'u', 'n', 'k'})
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, got := collect(t, w2)
	if len(got) != 2 || got[1] != "good-two" {
		t.Fatalf("after torn tail: %v", got)
	}
	// New appends land where the valid prefix ended.
	if _, err := w2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	_, got = collect(t, w2)
	if len(got) != 3 || got[2] != "post-crash" {
		t.Fatalf("appends after truncation: %v", got)
	}
}

func TestTruncateBefore(t *testing.T) {
	w, dir := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	var lsns []uint64
	for i := 0; i < 30; i++ {
		lsn, err := w.Append([]byte("0123456789"))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	before, _ := listSegments(faultfs.OS{}, dir)
	if err := w.TruncateBefore(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(faultfs.OS{}, dir)
	if len(after) >= len(before) {
		t.Fatalf("no segments removed: %d -> %d", len(before), len(after))
	}
	// Remaining records still replay and include the newest.
	_, got := collect(t, w)
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("replay after truncate: %d records", len(got))
	}
}

func TestSize(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	s0, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	w.Append(make([]byte, 100))
	s1, _ := w.Size()
	if s1 <= s0 {
		t.Fatalf("size did not grow: %d -> %d", s0, s1)
	}
}

func TestClosedErrors(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	w.Close()
	if _, err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close = %v", err)
	}
	if err := w.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close = %v", err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Fatalf("double Close = %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	w, _ := openTestWAL(t, Options{NoSync: true})
	defer w.Close()
	var wg sync.WaitGroup
	const goroutines, perG = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_, got := collect(t, w)
	if len(got) != goroutines*perG {
		t.Fatalf("replayed %d, want %d", len(got), goroutines*perG)
	}
}

func TestEmptyPayload(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	if _, err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	_, got := collect(t, w)
	if len(got) != 1 || got[0] != "" {
		t.Fatalf("empty payload replay: %q", got)
	}
}

func TestDurableLSNAdvances(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	if got := w.DurableLSN(); got != 0 {
		t.Fatalf("fresh log durable = %d", got)
	}
	lsn, err := w.Append([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != 0 {
		t.Fatalf("durable advanced before sync: %d", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	end := lsn + FrameOverhead + 5
	if got := w.DurableLSN(); got != end {
		t.Fatalf("durable = %d, want %d", got, end)
	}
	if got := w.NextLSN(); got != end {
		t.Fatalf("next = %d, want %d", got, end)
	}
}

func TestDurableSurvivesReopen(t *testing.T) {
	w, dir := openTestWAL(t, Options{})
	w.Append([]byte("one"))
	w.Append([]byte("two"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.DurableLSN() != w2.NextLSN() {
		t.Fatalf("reopened log: durable %d != next %d", w2.DurableLSN(), w2.NextLSN())
	}
}

func TestReadRange(t *testing.T) {
	// Small segments so the range spans sealed segments plus the active one.
	w, _ := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	var lsns []uint64
	for i := 0; i < 12; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("record-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	to := w.DurableLSN()

	// Full range.
	var got []uint64
	err := w.ReadRange(0, to, func(lsn uint64, p []byte) error {
		got = append(got, lsn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lsns) {
		t.Fatalf("read %d records, want %d", len(got), len(lsns))
	}
	for i := range lsns {
		if got[i] != lsns[i] {
			t.Fatalf("lsn[%d] = %d, want %d", i, got[i], lsns[i])
		}
	}

	// Mid-log start at a record boundary inside a later segment.
	got = got[:0]
	err = w.ReadRange(lsns[7], to, func(lsn uint64, p []byte) error {
		got = append(got, lsn)
		if string(p) != fmt.Sprintf("record-%02d", 7+len(got)-1) {
			t.Errorf("payload at %d = %q", lsn, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d records from lsn[7], want 5", len(got))
	}

	// Empty range is a no-op.
	if err := w.ReadRange(to, to, func(uint64, []byte) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReadRangeTruncated(t *testing.T) {
	w, _ := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	for i := 0; i < 12; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	cut := w.NextLSN()
	w.Append([]byte("tail"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	err := w.ReadRange(0, w.DurableLSN(), func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// Reading from the cut still works.
	n := 0
	if err := w.ReadRange(cut, w.DurableLSN(), func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("read %d records after cut, want 1", n)
	}
}

func TestWaitShippable(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()

	// Already-shippable data returns immediately.
	w.Append([]byte("x"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	pos, err := w.WaitShippable(0, 0, nil)
	if err != nil || pos != w.DurableLSN() {
		t.Fatalf("WaitShippable = %d, %v", pos, err)
	}

	// A blocked waiter is woken by a later sync.
	after := w.DurableLSN()
	done := make(chan uint64, 1)
	go func() {
		pos, err := w.WaitShippable(after, 0, nil)
		if err != nil {
			t.Error(err)
		}
		done <- pos
	}()
	w.Append([]byte("y"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if pos := <-done; pos != w.DurableLSN() {
		t.Fatalf("woken at %d, want %d", pos, w.DurableLSN())
	}

	// Timeout returns without error even with no new data.
	pos, err = w.WaitShippable(w.DurableLSN(), time.Millisecond, nil)
	if err != nil || pos != w.DurableLSN() {
		t.Fatalf("timeout wait = %d, %v", pos, err)
	}

	// Cancel unblocks with ErrCanceled.
	cancel := make(chan struct{})
	close(cancel)
	if _, err := w.WaitShippable(w.DurableLSN(), 0, cancel); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestWaitShippableClosedWakes(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	done := make(chan error, 1)
	go func() {
		_, err := w.WaitShippable(1<<40, 0, nil)
		done <- err
	}()
	// Let the waiter park, then close.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestNoSyncShippableIsAppendHorizon(t *testing.T) {
	w, _ := openTestWAL(t, Options{NoSync: true})
	defer w.Close()
	lsn, err := w.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != lsn+FrameOverhead+1 {
		t.Fatalf("NoSync durable = %d, want %d", got, lsn+FrameOverhead+1)
	}
}
