package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, opts Options) (*WAL, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, dir
}

func collect(t *testing.T, w *WAL) (lsns []uint64, payloads []string) {
	t.Helper()
	err := w.ForEach(func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestAppendReplay(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	var want []string
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("record-%d", i)
		if _, err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_, got := collect(t, w)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLSNsMonotonic(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	var prev uint64
	for i := 0; i < 20; i++ {
		lsn, err := w.Append([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && lsn <= prev {
			t.Fatalf("lsn %d not > previous %d", lsn, prev)
		}
		prev = lsn
	}
	if w.NextLSN() <= prev {
		t.Fatal("NextLSN must exceed last append")
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("one"))
	w.Append([]byte("two"))
	w.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	w2.Append([]byte("three"))
	_, got := collect(t, w2)
	if len(got) != 3 || got[0] != "one" || got[2] != "three" {
		t.Fatalf("replay after reopen: %v", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	w, dir := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	_, got := collect(t, w)
	if len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestRecordTooLarge(t *testing.T) {
	w, _ := openTestWAL(t, Options{SegmentSize: 32})
	defer w.Close()
	if _, err := w.Append(make([]byte, 64)); err == nil {
		t.Fatal("oversized record should fail")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]byte("good-one"))
	w.Append([]byte("good-two"))
	w.Close()

	// Corrupt the tail: append a valid-looking header with garbage payload.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segmentName(segs[0]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'j', 'u', 'n', 'k'})
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	_, got := collect(t, w2)
	if len(got) != 2 || got[1] != "good-two" {
		t.Fatalf("after torn tail: %v", got)
	}
	// New appends land where the valid prefix ended.
	if _, err := w2.Append([]byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	_, got = collect(t, w2)
	if len(got) != 3 || got[2] != "post-crash" {
		t.Fatalf("appends after truncation: %v", got)
	}
}

func TestTruncateBefore(t *testing.T) {
	w, dir := openTestWAL(t, Options{SegmentSize: 64})
	defer w.Close()
	var lsns []uint64
	for i := 0; i < 30; i++ {
		lsn, err := w.Append([]byte("0123456789"))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	before, _ := listSegments(dir)
	if err := w.TruncateBefore(lsns[len(lsns)-1]); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(before) {
		t.Fatalf("no segments removed: %d -> %d", len(before), len(after))
	}
	// Remaining records still replay and include the newest.
	_, got := collect(t, w)
	if len(got) == 0 || len(got) >= 30 {
		t.Fatalf("replay after truncate: %d records", len(got))
	}
}

func TestSize(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	s0, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	w.Append(make([]byte, 100))
	s1, _ := w.Size()
	if s1 <= s0 {
		t.Fatalf("size did not grow: %d -> %d", s0, s1)
	}
}

func TestClosedErrors(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	w.Close()
	if _, err := w.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close = %v", err)
	}
	if err := w.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close = %v", err)
	}
	if err := w.Close(); err != ErrClosed {
		t.Fatalf("double Close = %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	w, _ := openTestWAL(t, Options{NoSync: true})
	defer w.Close()
	var wg sync.WaitGroup
	const goroutines, perG = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	_, got := collect(t, w)
	if len(got) != goroutines*perG {
		t.Fatalf("replayed %d, want %d", len(got), goroutines*perG)
	}
}

func TestEmptyPayload(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	if _, err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	_, got := collect(t, w)
	if len(got) != 1 || got[0] != "" {
		t.Fatalf("empty payload replay: %q", got)
	}
}
