package wal

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/metrics"
)

// Syncer is the slice of WAL the batcher drives: it needs to know how far
// the log has been appended and how to make those appends durable. *WAL
// satisfies it; tests substitute fakes to inject fsync failures.
type Syncer interface {
	// NextLSN returns the LSN one past the last appended record.
	NextLSN() uint64
	// Sync makes every record appended before the call durable.
	Sync() error
}

// BatcherOptions tune group commit.
type BatcherOptions struct {
	// MaxBatch is the linger cutoff: once at least MaxBatch committers
	// are queued the flush leader stops waiting out MaxDelay and syncs
	// immediately. It does not bound how many commits one fsync covers —
	// an fsync always covers the whole appended prefix of the log. Zero
	// means DefaultMaxBatch; irrelevant when MaxDelay is zero.
	MaxBatch int
	// MaxDelay is how long a flush leader lingers to let more committers
	// join its batch. Zero means flush immediately — concurrent commits
	// still coalesce naturally, because appends that land while a flush
	// is in flight are all covered by the next flush. Negative is treated
	// as zero.
	MaxDelay time.Duration
}

// DefaultMaxBatch is the default linger cutoff: a leader stops waiting
// once 256 committers are queued.
const DefaultMaxBatch = 256

// BatcherStats counts flush activity. SyncedCommits/Flushes is the mean
// group size — the factor by which batching divides the fsync rate.
type BatcherStats struct {
	// Flushes is the number of fsyncs issued.
	Flushes uint64
	// SyncedCommits is the number of WaitDurable calls satisfied.
	SyncedCommits uint64
}

// Batcher turns per-commit fsyncs into group commit. Committers append
// their redo record to the WAL (cheap, buffered) and then call
// WaitDurable(lsn). The first waiter becomes the flush leader: it issues
// one Sync covering every record appended so far and wakes every waiter
// that record range satisfies, so N concurrent committers pay ~1 fsync
// instead of N.
//
// A failed fsync poisons the batcher permanently: after a sync error the
// kernel may have dropped the unwritten pages, so no later fsync can
// retroactively make the lost records durable. Every current and future
// waiter gets the error.
type Batcher struct {
	s    Syncer
	opts BatcherOptions

	mu       sync.Mutex
	cond     *sync.Cond
	durable  uint64 // LSNs below this are durable
	waiting  int    // committers parked in WaitDurable
	flushing bool   // a leader is between Sync start and wakeup
	draining bool   // Close in progress: cut lingers short
	err      error  // sticky fsync failure
	closed   bool
	// lingerC is non-nil while a flush leader lingers waiting for more
	// committers; closing it cuts the linger short (batch full, Close).
	lingerC chan struct{}

	flushes atomic.Uint64
	synced  atomic.Uint64
	// depth mirrors waiting with an atomic so scrapes never touch mu —
	// the batcher-depth gauge on /metrics.
	depth atomic.Int64
	// syncHist records each fsync's wall-clock latency in seconds. Always
	// on (one Observe per flush, not per commit); the metrics registry
	// attaches it at server startup.
	syncHist *metrics.Histogram
}

// NewBatcher creates a group-commit batcher over s.
func NewBatcher(s Syncer, opts BatcherOptions) *Batcher {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxDelay < 0 {
		opts.MaxDelay = 0
	}
	b := &Batcher{s: s, opts: opts, syncHist: metrics.NewHistogram(metrics.LatencyBuckets())}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Depth returns the number of committers currently parked in
// WaitDurable — the group-commit queue depth.
func (b *Batcher) Depth() int64 { return b.depth.Load() }

// SyncLatency exposes the per-fsync latency histogram (seconds) for
// metrics registration.
func (b *Batcher) SyncLatency() *metrics.Histogram { return b.syncHist }

// WaitDurable blocks until every record below lsn+1 is durable — i.e.
// until a sync that started after the caller's Append has completed.
// Callers must have already appended the record for lsn; the typical
// sequence is lsn, _ := w.Append(p); err := b.WaitDurable(lsn).
func (b *Batcher) WaitDurable(lsn uint64) error {
	b.mu.Lock()
	b.waiting++
	b.depth.Add(1)
	defer b.depth.Add(-1)
	if b.waiting >= b.opts.MaxBatch {
		// The batch a lingering leader is waiting for is here: flush now.
		b.cutLingerLocked()
	}
	for {
		switch {
		case b.err != nil:
			b.waiting--
			err := b.err
			b.mu.Unlock()
			return err
		case b.durable > lsn:
			b.waiting--
			b.synced.Add(1)
			b.mu.Unlock()
			return nil
		case b.closed && !b.flushing:
			// An in-flight flush may still cover this waiter — only give
			// up on Close once no flush is running.
			b.waiting--
			b.mu.Unlock()
			return ErrClosed
		case !b.flushing:
			b.flushLocked()
			// Loop: re-check durable/err, which flushLocked updated.
		default:
			b.cond.Wait()
		}
	}
}

// flushLocked runs one flush with the caller as leader. Called with b.mu
// held; returns with b.mu held.
func (b *Batcher) flushLocked() {
	b.flushing = true
	if b.opts.MaxDelay > 0 && b.waiting < b.opts.MaxBatch && !b.draining && !b.closed {
		// Linger so concurrent committers can append and join this batch.
		// A timer bounds the wait precisely (sub-100µs delays are honoured,
		// not rounded up to a sleep-slice granularity); a full batch or
		// Close closes lingerC and cuts the wait short immediately.
		c := make(chan struct{})
		b.lingerC = c
		b.mu.Unlock()
		t := time.NewTimer(b.opts.MaxDelay)
		select {
		case <-c:
			t.Stop()
		case <-t.C:
		}
		b.mu.Lock()
		b.lingerC = nil
		b.mu.Unlock()
	} else {
		b.mu.Unlock()
	}

	// Let committers that are already runnable slip their appends in
	// before the target is captured — one scheduler yield is enough to
	// grow the batch noticeably on loaded machines and costs ~µs.
	runtime.Gosched()

	// Everything appended up to here rides this fsync.
	target := b.s.NextLSN()
	t0 := time.Now()
	err := b.s.Sync()
	b.syncHist.ObserveDuration(time.Since(t0))

	b.mu.Lock()
	b.flushing = false
	if err != nil {
		b.err = fmt.Errorf("wal: group commit fsync: %w", err)
	} else {
		b.flushes.Add(1)
		if target > b.durable {
			b.durable = target
		}
	}
	b.cond.Broadcast()
}

// cutLingerLocked wakes a lingering flush leader early. Called with b.mu
// held.
func (b *Batcher) cutLingerLocked() {
	if b.lingerC != nil {
		close(b.lingerC)
		b.lingerC = nil
	}
}

// Stats snapshots flush counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{Flushes: b.flushes.Load(), SyncedCommits: b.synced.Load()}
}

// Err returns the sticky fsync failure, if any.
func (b *Batcher) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Close drains the batcher and then rejects future waits. Committers
// already parked in WaitDurable are not abandoned: any in-flight flush is
// waited out and one final flush covers the remaining appends, so a
// commit that raced a clean shutdown is acknowledged rather than failed
// spuriously (its record is durable — wal.Close seals the segment too).
// It does not close the underlying WAL.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.draining = true // cuts a lingering leader short
	b.cutLingerLocked()
	for b.flushing {
		b.cond.Wait()
	}
	if b.err == nil && b.waiting > 0 {
		b.flushLocked()
	}
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	return nil
}
