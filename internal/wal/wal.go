// Package wal implements the write-ahead log that makes commits durable.
// The paper's design persists only the newest committed version of each
// entity, written back lazily by a checkpointer; the WAL is what makes a
// commit durable in the window between commit and checkpoint.
//
// The log is a sequence of segment files, each named by the log sequence
// number (LSN) of its first record. A record is framed as
//
//	length:u32le  crc:u32le(castagnoli, over payload)  payload
//
// and an LSN is the global byte offset of a record's frame. Replay stops
// at the first torn or corrupt frame — everything before it was durable,
// everything after it never acknowledged.
//
// Commit durability is pipelined through the Batcher (group commit):
// committers append their record and park in WaitDurable until one shared
// fsync — issued by whichever committer leads the flush — covers their
// LSN, so N concurrent committers pay ~1 fsync instead of N.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"neograph/internal/faultfs"
)

// Options tune the log.
type Options struct {
	// SegmentSize is the byte size at which the active segment rotates.
	// Zero means DefaultSegmentSize.
	SegmentSize int64
	// NoSync disables fsync on Sync() calls — useful for benchmarks that
	// measure CPU cost rather than disk latency. Durability is lost.
	NoSync bool
	// FS is the file-system seam, nil meaning the real OS. Crash tests
	// substitute a faultfs.Injector to kill the log at scripted points.
	FS faultfs.FS
}

// DefaultSegmentSize rotates segments at 16 MiB.
const DefaultSegmentSize = 16 << 20

const frameHeader = 8 // length + crc

// FrameOverhead is the number of framing bytes that precede each record's
// payload. A record appended at LSN l with payload p occupies the byte
// range [l, l+FrameOverhead+len(p)); the upper bound is the record's end
// position — the token replication and read-your-writes waiting use.
const FrameOverhead = frameHeader

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	ErrClosed   = errors.New("wal: closed")
	ErrTooLarge = errors.New("wal: record exceeds segment size")
	// ErrTruncated reports that a requested read position predates the
	// oldest retained segment (checkpointing removed it). A replica this
	// far behind cannot catch up from the log and must be re-seeded.
	ErrTruncated = errors.New("wal: position predates oldest retained segment")
	// ErrCanceled reports that a WaitShippable call was canceled.
	ErrCanceled  = errors.New("wal: wait canceled")
	errBadHeader = errors.New("wal: bad segment file name")
)

// WAL is an append-only segmented log. It is safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	dir     string
	fs      faultfs.FS
	opts    Options
	active  faultfs.File
	start   uint64 // LSN of the active segment's first byte
	size    int64  // bytes written to the active segment
	nextLSN uint64
	closed  bool
	// syncMu serialises Sync's fsync+bookkeeping (lock order: syncMu then
	// mu). The kernel reports a writeback error once per fd, so two
	// overlapping fsyncs would race on who observes it — serialised,
	// non-overlapping fsyncs make a nil result trustworthy: a clean fsync
	// covers everything appended before it started, and any concurrent
	// seal fsync (rotation/Close, under mu) publishes failErr before this
	// caller's bookkeeping can run. Appends never take syncMu, so the log
	// keeps filling while a flush is in flight.
	syncMu sync.Mutex
	// failErr is a sticky fsync failure (from Sync, rotation, or Close's
	// seal sync). The kernel reports a writeback error once per fd and may
	// drop the dirty pages, so after any failed fsync no later fsync can
	// be trusted to mean the earlier records are durable: the log is
	// poisoned and every subsequent Append/Sync fails with this error.
	failErr error
	// durable is the durability horizon: every byte below it has been
	// covered by a successful fsync (or was found on disk at Open). It is
	// the position replication ships up to — a replica never applies a
	// record its primary could still lose.
	durable uint64
	// notifyC, when non-nil, is closed whenever the shippable horizon
	// advances (durable moves, or any append under NoSync) and at Close,
	// waking WaitShippable callers. Lazily created by the first waiter.
	notifyC chan struct{}
}

// Open opens (creating if needed) the log in dir. Existing segments are
// scanned to find the next LSN; a trailing torn record is truncated away.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	fs := faultfs.OrOS(opts.FS)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	w := &WAL{dir: dir, fs: fs, opts: opts}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.rotateLocked(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Validate the last segment and truncate any torn tail.
	last := segs[len(segs)-1]
	validLen, err := validLength(fs, filepath.Join(dir, segmentName(last)))
	if err != nil {
		return nil, err
	}
	f, err := fs.OpenFile(filepath.Join(dir, segmentName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	w.active = f
	w.start = last
	w.size = validLen
	w.nextLSN = last + uint64(validLen)
	// Everything that survived on disk is, by definition, durable.
	w.durable = w.nextLSN
	return w, nil
}

// wakeLocked wakes WaitShippable callers. Caller holds w.mu.
func (w *WAL) wakeLocked() {
	if w.notifyC != nil {
		close(w.notifyC)
		w.notifyC = nil
	}
}

// markDurableLocked advances the durability horizon. Caller holds w.mu.
func (w *WAL) markDurableLocked(pos uint64) {
	if pos > w.durable {
		w.durable = pos
		w.wakeLocked()
	}
}

// shippableLocked is the horizon up to which records may be shipped to a
// replica: the durable position, or — when fsync is disabled and nothing
// is ever formally durable — everything appended. Caller holds w.mu.
func (w *WAL) shippableLocked() uint64 {
	if w.opts.NoSync {
		return w.nextLSN
	}
	return w.durable
}

// segmentName renders the canonical file name for a segment starting at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("wal-%020d.log", lsn) }

// parseSegmentName extracts the starting LSN from a segment file name.
func parseSegmentName(name string) (uint64, error) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, errBadHeader
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, errBadHeader
	}
	return n, nil
}

// listSegments returns the starting LSNs of all segments in dir, sorted.
func listSegments(fs faultfs.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, err := parseSegmentName(e.Name()); err == nil {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// validLength scans a segment and returns the byte length of its valid
// prefix (up to but excluding the first torn/corrupt frame).
func validLength(fs faultfs.FS, path string) (int64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	off := int64(0)
	for {
		if int64(len(data))-off < frameHeader {
			return off, nil
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + frameHeader + int64(length)
		if end > int64(len(data)) {
			return off, nil
		}
		if crc32.Checksum(data[off+frameHeader:end], castagnoli) != crc {
			return off, nil
		}
		off = end
	}
}

// rotateLocked opens a fresh segment starting at lsn. Caller holds w.mu
// (or is the constructor).
func (w *WAL) rotateLocked(lsn uint64) error {
	if w.active != nil {
		if !w.opts.NoSync {
			if err := w.active.Sync(); err != nil {
				w.failErr = err
				return err
			}
			// The seal fsync covered every record appended so far.
			w.markDurableLocked(w.nextLSN)
		}
		if err := w.active.Close(); err != nil {
			return err
		}
	}
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segmentName(lsn)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w.active = f
	w.start = lsn
	w.size = 0
	w.nextLSN = lsn
	return nil
}

// Append writes one record and returns its LSN. The record is durable
// only after a subsequent Sync (or if the OS flushes sooner).
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.failErr != nil {
		return 0, fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
	}
	frame := int64(frameHeader + len(payload))
	if frame > w.opts.SegmentSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if w.size+frame > w.opts.SegmentSize {
		if err := w.rotateLocked(w.nextLSN); err != nil {
			return 0, err
		}
	}
	lsn := w.nextLSN
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.active.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.size += frame
	w.nextLSN += uint64(frame)
	if w.opts.NoSync {
		// With fsync disabled the shippable horizon is the append horizon.
		w.wakeLocked()
	}
	return lsn, nil
}

// Sync makes all records appended before the call durable. The fsync runs
// outside the log mutex so concurrent Appends proceed while the disk
// works — this is what lets group commit accumulate a batch during the
// in-flight flush.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.failErr != nil {
		err := w.failErr
		w.mu.Unlock()
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", err)
	}
	if w.opts.NoSync {
		w.mu.Unlock()
		return nil
	}
	if w.durable >= w.nextLSN {
		// Everything appended is already durable: an fsync would prove
		// nothing new. This keeps idle replicas (whose applier fsyncs on
		// every sync-requested heartbeat) from hammering the disk when no
		// records have arrived.
		w.mu.Unlock()
		return nil
	}
	f := w.active
	// Records appended before this point are covered by the fsync below;
	// later appends may be too, but this is the bound we can prove.
	target := w.nextLSN
	w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	err := f.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err == nil {
		// A concurrent seal fsync (rotation/Close) may have consumed the
		// kernel's once-per-fd writeback error and set failErr while we
		// were syncing — our nil then proves nothing about those records.
		if w.failErr != nil {
			return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
		}
		w.markDurableLocked(target)
		return nil
	}
	// The segment may have been sealed while we synced: rotation and Close
	// both fsync the active file before closing it, so a "file already
	// closed" failure on a no-longer-active handle means the records are
	// already durable — unless that seal fsync itself failed (failErr), in
	// which case durability was lost and the error must surface.
	if (w.active != f || w.closed) && w.failErr == nil && errors.Is(err, os.ErrClosed) {
		return nil
	}
	if w.failErr != nil {
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
	}
	w.failErr = err
	return err
}

// NextLSN returns the LSN the next Append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// ForEach replays every record in LSN order, calling fn(lsn, payload).
// The payload slice is only valid during the call. Iteration stops early
// if fn returns an error, which is propagated.
func (w *WAL) ForEach(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if !w.opts.NoSync {
		// Make sure buffered appends are visible to the reader below.
		if err := w.active.Sync(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	segs, err := listSegments(w.fs, w.dir)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for _, start := range segs {
		data, err := w.fs.ReadFile(filepath.Join(w.dir, segmentName(start)))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if _, err := scanFrames(data, start, 0, ^uint64(0), false, fn); err != nil {
			return err
		}
	}
	return nil
}

// scanFrames iterates the frames in one segment's bytes, starting at byte
// offset off, calling fn(lsn, payload) for every record whose LSN is below
// stop. In strict mode a torn or corrupt frame is an error; otherwise it
// ends the scan silently (replay semantics: the torn tail was never
// acknowledged). Returns the offset one past the last frame consumed.
func scanFrames(data []byte, segStart uint64, off int64, stop uint64, strict bool, fn func(lsn uint64, payload []byte) error) (int64, error) {
	for {
		lsn := segStart + uint64(off)
		if lsn >= stop {
			return off, nil
		}
		if int64(len(data))-off < frameHeader {
			if strict && int64(len(data)) != off {
				return off, fmt.Errorf("wal: torn frame header at lsn %d", lsn)
			}
			return off, nil
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + frameHeader + int64(length)
		if end > int64(len(data)) || crc32.Checksum(data[off+frameHeader:end], castagnoli) != crc {
			if strict {
				return off, fmt.Errorf("wal: corrupt frame at lsn %d", lsn)
			}
			return off, nil // torn tail
		}
		if err := fn(lsn, data[off+frameHeader:end]); err != nil {
			return off, err
		}
		off = end
	}
}

// DurableLSN returns the durability horizon: the position one past the
// last byte known to be fsynced (with NoSync, one past the last append).
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.shippableLocked()
}

// StartLSN returns the base position of the oldest retained segment.
// Records below it have been truncated away and can no longer be
// shipped; a replica asking to resume from an earlier position must be
// re-seeded from a snapshot instead.
func (w *WAL) StartLSN() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return w.start, nil
	}
	return segs[0], nil
}

// WaitShippable blocks until the shippable horizon advances past `after`,
// a timeout elapses (timeout > 0), or cancel is closed. It returns the
// current horizon — on timeout possibly still equal to `after` (callers
// use the timeout path to emit heartbeats). The returned error is
// ErrClosed after Close, ErrCanceled on cancel, or the sticky fsync
// poison (no further records can ever become durable).
func (w *WAL) WaitShippable(after uint64, timeout time.Duration, cancel <-chan struct{}) (uint64, error) {
	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	for {
		w.mu.Lock()
		pos := w.shippableLocked()
		switch {
		case pos > after:
			w.mu.Unlock()
			return pos, nil
		case w.closed:
			w.mu.Unlock()
			return pos, ErrClosed
		case w.failErr != nil:
			err := w.failErr
			w.mu.Unlock()
			return pos, fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", err)
		}
		if w.notifyC == nil {
			w.notifyC = make(chan struct{})
		}
		c := w.notifyC
		w.mu.Unlock()
		select {
		case <-c:
		case <-timerC:
			return w.DurableLSN(), nil
		case <-cancel:
			return pos, ErrCanceled
		}
	}
}

// ReadRange replays every record with from <= lsn < to in order, reusing
// ForEach's frame decoding. Both bounds must be frame boundaries (record
// LSNs or record end positions); `to` must not exceed the shippable
// horizon. Unlike ForEach, a torn or corrupt frame inside the range is an
// error — the caller asked for records that are claimed durable. Returns
// ErrTruncated when `from` predates the oldest retained segment.
func (w *WAL) ReadRange(from, to uint64, fn func(lsn uint64, payload []byte) error) error {
	if from >= to {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	segs, err := listSegments(w.fs, w.dir)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	// The segment holding `from` is the last one starting at or before it.
	first := -1
	for i, s := range segs {
		if s <= from {
			first = i
		} else {
			break
		}
	}
	if first < 0 {
		return fmt.Errorf("%w: want %d, oldest segment starts later", ErrTruncated, from)
	}
	pos := from
	for i := first; i < len(segs) && segs[i] < to; i++ {
		// Read only the [pos, to) window of the segment — the live tail
		// ships small batches out of a large active segment, and loading
		// the whole file per batch would make shipping O(segment size).
		data, err := readSegmentRange(w.fs, filepath.Join(w.dir, segmentName(segs[i])), segs[i], pos, to)
		if err != nil {
			return err
		}
		end, err := scanFrames(data, pos, 0, to, true, fn)
		if err != nil {
			return err
		}
		pos += uint64(end)
	}
	if pos < to {
		return fmt.Errorf("wal: read range ends at %d, want %d", pos, to)
	}
	return nil
}

// readSegmentRange returns the segment's bytes from position pos up to at
// most position to (both global LSNs; the segment starts at segStart).
func readSegmentRange(fs faultfs.FS, path string, segStart, pos, to uint64) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read range: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: read range: %w", err)
	}
	off := int64(0)
	if segStart < pos {
		off = int64(pos - segStart)
		if off > st.Size() {
			return nil, fmt.Errorf("wal: read range: position %d beyond segment %d", pos, segStart)
		}
	}
	n := st.Size() - off
	if max := int64(to - (segStart + uint64(off))); n > max {
		n = max
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return nil, fmt.Errorf("wal: read range: %w", err)
	}
	return buf, nil
}

// Rotate closes the active segment and starts a fresh one at the current
// LSN. Checkpoints rotate before truncating so the segment holding
// pre-checkpoint records becomes removable.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.size == 0 {
		return nil // fresh segment already
	}
	return w.rotateLocked(w.nextLSN)
}

// TruncateBefore removes whole segments that end at or before lsn —
// called after a checkpoint has made their contents redundant. The
// segment containing lsn is kept.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return err
	}
	for i, start := range segs {
		// A segment may be removed if the next segment starts at or before
		// lsn (so this whole segment is < lsn) and it is not active.
		if i+1 >= len(segs) || segs[i+1] > lsn || start == w.start {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, segmentName(start))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Size returns the total byte size of all live segments.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range segs {
		st, err := w.fs.Stat(filepath.Join(w.dir, segmentName(s)))
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	defer w.wakeLocked() // waiters must observe closed
	if !w.opts.NoSync {
		if err := w.active.Sync(); err != nil {
			w.failErr = err
			w.active.Close()
			return err
		}
		w.markDurableLocked(w.nextLSN)
	}
	return w.active.Close()
}
