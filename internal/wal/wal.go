// Package wal implements the write-ahead log that makes commits durable.
// The paper's design persists only the newest committed version of each
// entity, written back lazily by a checkpointer; the WAL is what makes a
// commit durable in the window between commit and checkpoint.
//
// The log is a sequence of segment files, each named by the log sequence
// number (LSN) of its first record. A record is framed as
//
//	length:u32le  crc:u32le(castagnoli, over payload)  payload
//
// and an LSN is the global byte offset of a record's frame. Replay stops
// at the first torn or corrupt frame — everything before it was durable,
// everything after it never acknowledged.
//
// Commit durability is pipelined through the Batcher (group commit):
// committers append their record and park in WaitDurable until one shared
// fsync — issued by whichever committer leads the flush — covers their
// LSN, so N concurrent committers pay ~1 fsync instead of N.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Options tune the log.
type Options struct {
	// SegmentSize is the byte size at which the active segment rotates.
	// Zero means DefaultSegmentSize.
	SegmentSize int64
	// NoSync disables fsync on Sync() calls — useful for benchmarks that
	// measure CPU cost rather than disk latency. Durability is lost.
	NoSync bool
}

// DefaultSegmentSize rotates segments at 16 MiB.
const DefaultSegmentSize = 16 << 20

const frameHeader = 8 // length + crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	ErrClosed    = errors.New("wal: closed")
	ErrTooLarge  = errors.New("wal: record exceeds segment size")
	errBadHeader = errors.New("wal: bad segment file name")
)

// WAL is an append-only segmented log. It is safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	active  *os.File
	start   uint64 // LSN of the active segment's first byte
	size    int64  // bytes written to the active segment
	nextLSN uint64
	closed  bool
	// syncMu serialises Sync's fsync+bookkeeping (lock order: syncMu then
	// mu). The kernel reports a writeback error once per fd, so two
	// overlapping fsyncs would race on who observes it — serialised,
	// non-overlapping fsyncs make a nil result trustworthy: a clean fsync
	// covers everything appended before it started, and any concurrent
	// seal fsync (rotation/Close, under mu) publishes failErr before this
	// caller's bookkeeping can run. Appends never take syncMu, so the log
	// keeps filling while a flush is in flight.
	syncMu sync.Mutex
	// failErr is a sticky fsync failure (from Sync, rotation, or Close's
	// seal sync). The kernel reports a writeback error once per fd and may
	// drop the dirty pages, so after any failed fsync no later fsync can
	// be trusted to mean the earlier records are durable: the log is
	// poisoned and every subsequent Append/Sync fails with this error.
	failErr error
}

// Open opens (creating if needed) the log in dir. Existing segments are
// scanned to find the next LSN; a trailing torn record is truncated away.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.rotateLocked(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Validate the last segment and truncate any torn tail.
	last := segs[len(segs)-1]
	validLen, err := validLength(filepath.Join(dir, segmentName(last)))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	w.active = f
	w.start = last
	w.size = validLen
	w.nextLSN = last + uint64(validLen)
	return w, nil
}

// segmentName renders the canonical file name for a segment starting at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("wal-%020d.log", lsn) }

// parseSegmentName extracts the starting LSN from a segment file name.
func parseSegmentName(name string) (uint64, error) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, errBadHeader
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, errBadHeader
	}
	return n, nil
}

// listSegments returns the starting LSNs of all segments in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, err := parseSegmentName(e.Name()); err == nil {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// validLength scans a segment and returns the byte length of its valid
// prefix (up to but excluding the first torn/corrupt frame).
func validLength(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	off := int64(0)
	for {
		if int64(len(data))-off < frameHeader {
			return off, nil
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		end := off + frameHeader + int64(length)
		if end > int64(len(data)) {
			return off, nil
		}
		if crc32.Checksum(data[off+frameHeader:end], castagnoli) != crc {
			return off, nil
		}
		off = end
	}
}

// rotateLocked opens a fresh segment starting at lsn. Caller holds w.mu
// (or is the constructor).
func (w *WAL) rotateLocked(lsn uint64) error {
	if w.active != nil {
		if !w.opts.NoSync {
			if err := w.active.Sync(); err != nil {
				w.failErr = err
				return err
			}
		}
		if err := w.active.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(lsn)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w.active = f
	w.start = lsn
	w.size = 0
	w.nextLSN = lsn
	return nil
}

// Append writes one record and returns its LSN. The record is durable
// only after a subsequent Sync (or if the OS flushes sooner).
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.failErr != nil {
		return 0, fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
	}
	frame := int64(frameHeader + len(payload))
	if frame > w.opts.SegmentSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if w.size+frame > w.opts.SegmentSize {
		if err := w.rotateLocked(w.nextLSN); err != nil {
			return 0, err
		}
	}
	lsn := w.nextLSN
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.active.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := w.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	w.size += frame
	w.nextLSN += uint64(frame)
	return lsn, nil
}

// Sync makes all records appended before the call durable. The fsync runs
// outside the log mutex so concurrent Appends proceed while the disk
// works — this is what lets group commit accumulate a batch during the
// in-flight flush.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.failErr != nil {
		err := w.failErr
		w.mu.Unlock()
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", err)
	}
	if w.opts.NoSync {
		w.mu.Unlock()
		return nil
	}
	f := w.active
	w.mu.Unlock()
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	err := f.Sync()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err == nil {
		// A concurrent seal fsync (rotation/Close) may have consumed the
		// kernel's once-per-fd writeback error and set failErr while we
		// were syncing — our nil then proves nothing about those records.
		if w.failErr != nil {
			return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
		}
		return nil
	}
	// The segment may have been sealed while we synced: rotation and Close
	// both fsync the active file before closing it, so a "file already
	// closed" failure on a no-longer-active handle means the records are
	// already durable — unless that seal fsync itself failed (failErr), in
	// which case durability was lost and the error must surface.
	if (w.active != f || w.closed) && w.failErr == nil && errors.Is(err, os.ErrClosed) {
		return nil
	}
	if w.failErr != nil {
		return fmt.Errorf("wal: log poisoned by earlier fsync failure: %w", w.failErr)
	}
	w.failErr = err
	return err
}

// NextLSN returns the LSN the next Append will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// ForEach replays every record in LSN order, calling fn(lsn, payload).
// The payload slice is only valid during the call. Iteration stops early
// if fn returns an error, which is propagated.
func (w *WAL) ForEach(fn func(lsn uint64, payload []byte) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if !w.opts.NoSync {
		// Make sure buffered appends are visible to the reader below.
		if err := w.active.Sync(); err != nil {
			w.mu.Unlock()
			return err
		}
	}
	segs, err := listSegments(w.dir)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for _, start := range segs {
		data, err := os.ReadFile(filepath.Join(w.dir, segmentName(start)))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		off := int64(0)
		for {
			if int64(len(data))-off < frameHeader {
				break
			}
			length := binary.LittleEndian.Uint32(data[off:])
			crc := binary.LittleEndian.Uint32(data[off+4:])
			end := off + frameHeader + int64(length)
			if end > int64(len(data)) || crc32.Checksum(data[off+frameHeader:end], castagnoli) != crc {
				break // torn tail
			}
			if err := fn(start+uint64(off), data[off+frameHeader:end]); err != nil {
				return err
			}
			off = end
		}
	}
	return nil
}

// Rotate closes the active segment and starts a fresh one at the current
// LSN. Checkpoints rotate before truncating so the segment holding
// pre-checkpoint records becomes removable.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.size == 0 {
		return nil // fresh segment already
	}
	return w.rotateLocked(w.nextLSN)
}

// TruncateBefore removes whole segments that end at or before lsn —
// called after a checkpoint has made their contents redundant. The
// segment containing lsn is kept.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for i, start := range segs {
		// A segment may be removed if the next segment starts at or before
		// lsn (so this whole segment is < lsn) and it is not active.
		if i+1 >= len(segs) || segs[i+1] > lsn || start == w.start {
			continue
		}
		if err := os.Remove(filepath.Join(w.dir, segmentName(start))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Size returns the total byte size of all live segments.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range segs {
		st, err := os.Stat(filepath.Join(w.dir, segmentName(s)))
		if err != nil {
			return 0, err
		}
		total += st.Size()
	}
	return total, nil
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.closed = true
	if !w.opts.NoSync {
		if err := w.active.Sync(); err != nil {
			w.failErr = err
			w.active.Close()
			return err
		}
	}
	return w.active.Close()
}
