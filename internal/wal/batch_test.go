package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neograph/internal/faultfs"
)

// TestBatcherGroupsConcurrentCommits drives many concurrent committers
// through Append+WaitDurable and checks that (a) every record is durable
// and replayable afterwards and (b) the batcher issued far fewer fsyncs
// than there were commits.
func TestBatcherGroupsConcurrentCommits(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(w, BatcherOptions{})

	const writers = 16
	const perWriter = 25
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				lsn, err := w.Append([]byte(fmt.Sprintf("w%d-%d", i, j)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := b.WaitDurable(lsn); err != nil {
					t.Errorf("wait durable: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	st := b.Stats()
	if st.SyncedCommits != writers*perWriter {
		t.Fatalf("synced commits = %d, want %d", st.SyncedCommits, writers*perWriter)
	}
	if st.Flushes == 0 || st.Flushes >= st.SyncedCommits {
		t.Fatalf("flushes = %d for %d commits; want batching (0 < flushes < commits)", st.Flushes, st.SyncedCommits)
	}
	t.Logf("%d commits in %d flushes (mean batch %.1f)",
		st.SyncedCommits, st.Flushes, float64(st.SyncedCommits)/float64(st.Flushes))

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-replay: reopen and count records.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	if err := w2.ForEach(func(_ uint64, _ []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", n, writers*perWriter)
	}
}

// TestBatcherMaxDelayCoalesces checks that a lingering leader absorbs
// followers that arrive within MaxDelay.
func TestBatcherMaxDelayCoalesces(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b := NewBatcher(w, BatcherOptions{MaxDelay: 20 * time.Millisecond})

	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrivals inside the linger window.
			time.Sleep(time.Duration(i) * time.Millisecond)
			lsn, err := w.Append([]byte{byte(i)})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := b.WaitDurable(lsn); err != nil {
				t.Errorf("wait durable: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.Flushes > writers/2 {
		t.Fatalf("flushes = %d for %d staggered commits; linger should coalesce them", st.Flushes, writers)
	}
}

// TestBatcherMaxBatchFlushesEarly checks that a full batch flushes without
// waiting out MaxDelay.
func TestBatcherMaxBatchFlushesEarly(t *testing.T) {
	w, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	b := NewBatcher(w, BatcherOptions{MaxBatch: 2, MaxDelay: 10 * time.Second})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append([]byte{byte(i)})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := b.WaitDurable(lsn); err != nil {
				t.Errorf("wait durable: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch took %v; should flush well before the 10s MaxDelay", elapsed)
	}
}

// failingSyncer fails every Sync after the first `okUntil` calls.
type failingSyncer struct {
	next    atomic.Uint64
	calls   atomic.Uint64
	okUntil uint64
}

func (f *failingSyncer) NextLSN() uint64 { return f.next.Load() }
func (f *failingSyncer) Sync() error {
	if f.calls.Add(1) > f.okUntil {
		return errors.New("injected fsync failure")
	}
	return nil
}

// TestBatcherFsyncFailurePropagates checks that a leader's failed fsync is
// reported to every waiter in the batch, and that the batcher stays
// poisoned afterwards (no later commit can claim durability).
func TestBatcherFsyncFailurePropagates(t *testing.T) {
	f := &failingSyncer{}
	b := NewBatcher(f, BatcherOptions{MaxDelay: 10 * time.Millisecond})

	const waiters = 8
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn := f.next.Add(8) - 8 // simulate an append
			errs <- b.WaitDurable(lsn)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("a waiter observed durability despite the fsync failing")
		}
	}
	// Poisoned: a fresh waiter fails immediately even without a new flush.
	if err := b.WaitDurable(f.next.Add(8) - 8); err == nil {
		t.Fatal("batcher accepted a commit after a failed fsync")
	}
	if b.Err() == nil {
		t.Fatal("Err() should report the sticky failure")
	}
}

// TestBatcherCloseWakesWaiters checks Close unblocks parked committers.
func TestBatcherCloseWakesWaiters(t *testing.T) {
	f := &failingSyncer{okUntil: 1 << 62} // syncs always succeed
	b := NewBatcher(f, BatcherOptions{MaxDelay: time.Hour})

	done := make(chan error, 1)
	go func() {
		lsn := f.next.Add(8) - 8
		done <- b.WaitDurable(lsn)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// Either the flush completed first (nil) or Close cut it off.
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still parked after Close")
	}
}

// TestBatcherDurableAcrossRotation checks that records sealed into a
// rotated segment still count as durable (rotation syncs the old file).
func TestBatcherDurableAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(w, BatcherOptions{})
	for i := 0; i < 20; i++ { // small segment: forces several rotations
		lsn, err := w.Append([]byte("0123456789abcdef"))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotations, got %d segment(s) in %s", len(segs), filepath.Join(dir))
	}
}

// TestLingerCutShortByFullBatch would hang for an hour if a full batch
// did not cut the timer-based linger short.
func TestLingerCutShortByFullBatch(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	b := NewBatcher(w, BatcherOptions{MaxDelay: time.Hour, MaxBatch: 2})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := w.Append([]byte{byte(i)})
			if err != nil {
				t.Error(err)
				return
			}
			if err := b.WaitDurable(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("full batch did not cut the linger short")
	}
}

// TestLingerCutShortByClose: a lone committer lingering out a huge delay
// is flushed promptly when the batcher drains.
func TestLingerCutShortByClose(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	b := NewBatcher(w, BatcherOptions{MaxDelay: time.Hour, MaxBatch: 64})
	res := make(chan error, 1)
	lsn, err := w.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	go func() { res <- b.WaitDurable(lsn) }()
	// Wait for the leader to start lingering, then drain.
	for {
		b.mu.Lock()
		lingering := b.lingerC != nil
		b.mu.Unlock()
		if lingering {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-res:
		// The drain flush must cover the committer, not fail it.
		if err != nil {
			t.Fatalf("WaitDurable = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not cut the linger short")
	}
	if b.Stats().Flushes == 0 {
		t.Fatal("no flush issued")
	}
}

// TestSubMillisecondLinger: a tiny MaxDelay expires on its own timer, not
// a coarse sleep-slice floor — the commit completes far faster than the
// old 8-slice loop's worst case would allow for long delays.
func TestSubMillisecondLinger(t *testing.T) {
	w, _ := openTestWAL(t, Options{})
	defer w.Close()
	b := NewBatcher(w, BatcherOptions{MaxDelay: 50 * time.Microsecond, MaxBatch: 1 << 20})
	defer b.Close()
	lsn, err := w.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := b.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("50µs linger took %v", d)
	}
}
