package neograph_test

// One benchmark per experiment in DESIGN.md's index (E1..E8, F1), plus
// engine micro-benchmarks. The experiment benchmarks wrap the drivers in
// internal/bench with quick configurations and surface their headline
// numbers through b.ReportMetric; `go test -bench .` therefore regenerates
// every table, and `cmd/neograph-bench` prints the full-size versions.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"neograph"
	"neograph/internal/bench"
	"neograph/internal/workload"
)

func BenchmarkE1Anomalies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunE1(io.Discard, bench.E1Config{
			People: 300, Writers: 4, Checkers: 2, Duration: 400 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].UnrepeatableReads+res[0].PhantomReads), "si-anomalies")
		b.ReportMetric(float64(res[1].UnrepeatableReads+res[1].PhantomReads), "rc-anomalies")
	}
}

func BenchmarkE2Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE2(io.Discard, bench.E2Config{
			People: 500, Clients: []int{4}, Duration: 200 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mix == "write-heavy 10/90" {
				b.ReportMetric(r.Result.Throughput(), r.Isolation+"-txn/s")
			}
		}
	}
}

func BenchmarkE3Conflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE3(io.Discard, bench.E3Config{
			People: 300, Clients: 8, Thetas: []float64{0.9}, Duration: 200 * time.Millisecond, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Result.AbortRate(), r.Policy+"-abort-rate")
		}
	}
}

func BenchmarkE4GC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE4(io.Discard, bench.E4Config{
			LiveEntities: []int{10_000}, GarbageVersions: 2_000, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Pause.Microseconds()), r.Mode+"-pause-us")
		}
	}
}

func BenchmarkE5LongReaders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE5(io.Discard, bench.E5Config{
			HotNodes: 100, UpdatesPerStep: 500, Steps: 3, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[len(rows)-2].Versions), "versions-pinned")
		b.ReportMetric(float64(rows[len(rows)-1].Versions), "versions-released")
	}
}

func BenchmarkE6Indexes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE6(io.Discard, bench.E6Config{
			Nodes: 10_000, Selectivities: []float64{0.01}, Lookups: 10, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		b.ReportMetric(float64(r.IndexTime.Microseconds()), "index-us")
		b.ReportMetric(float64(r.ScanTime.Microseconds()), "scan-us")
	}
}

func BenchmarkE7RYOW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE7(io.Discard, bench.E7Config{
			BaseNodes: 2_000, WriteSetSizes: []int{0, 1000}, Lookups: 10, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].PerLookup.Microseconds()), "empty-ws-us")
		b.ReportMetric(float64(rows[len(rows)-1].PerLookup.Microseconds()), "1k-ws-us")
	}
}

func BenchmarkE8Persistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunE8(io.Discard, bench.E8Config{
			Entities: 500, UpdatesPerNode: 5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LatestOnlyBytes), "latest-only-B")
		b.ReportMetric(float64(res.AllVersionsBytes), "all-versions-B")
		b.ReportMetric(float64(res.RecoveryTime.Microseconds()), "recovery-us")
	}
}

func BenchmarkF1Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.RunF1(io.Discard, 300, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- engine micro-benchmarks ----

func buildBenchGraph(b *testing.B, people int) (*neograph.DB, *workload.SocialGraph) {
	b.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.BuildSocial(db, workload.SocialConfig{People: people, AvgFriends: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	return db, g
}

func BenchmarkPointRead(b *testing.B) {
	db, g := buildBenchGraph(b, 2_000)
	tx := db.Begin()
	defer tx.Abort()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tx.GetNode(g.People[i%len(g.People)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitSingleUpdate(b *testing.B) {
	db, g := buildBenchGraph(b, 2_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := db.Update(10, func(tx *neograph.Tx) error {
			return tx.SetNodeProp(g.People[i%len(g.People)], "balance", neograph.Int(int64(i)))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraverse1Hop(b *testing.B) {
	db, g := buildBenchGraph(b, 2_000)
	tx := db.Begin()
	defer tx.Abort()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Relationships(g.People[i%len(g.People)], neograph.Both); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLabelLookup(b *testing.B) {
	db, _ := buildBenchGraph(b, 2_000)
	tx := db.Begin()
	defer tx.Abort()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tx.NodesByLabel(workload.LabelPerson); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConcurrentMixedOps(b *testing.B) {
	db, g := buildBenchGraph(b, 2_000)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(time.Now().UnixNano()))
		for pb.Next() {
			if r.Intn(10) < 8 {
				db.View(func(tx *neograph.Tx) error {
					_, err := tx.Relationships(g.People[r.Intn(len(g.People))], neograph.Both)
					return err
				})
			} else {
				_ = db.Update(10, func(tx *neograph.Tx) error {
					return tx.SetNodeProp(g.People[r.Intn(len(g.People))], "balance", neograph.Int(r.Int63n(1<<20)))
				})
			}
		}
	})
}

func BenchmarkGCPerVersion(b *testing.B) {
	db, g := buildBenchGraph(b, 1_000)
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Update(10, func(tx *neograph.Tx) error {
			return tx.SetNodeProp(g.People[i%len(g.People)], "balance", neograph.Int(int64(i)))
		})
	}
	b.StartTimer()
	rep := db.RunGC()
	if rep.Collected == 0 && b.N > 1 {
		b.Fatalf("nothing collected: %+v", rep)
	}
}

var sinkErr error

func BenchmarkConflictDetection(b *testing.B) {
	db, g := buildBenchGraph(b, 100)
	hot := g.People[0]
	holder := db.Begin()
	if err := holder.SetNodeProp(hot, "balance", neograph.Int(1)); err != nil {
		b.Fatal(err)
	}
	defer holder.Abort()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		sinkErr = tx.SetNodeProp(hot, "balance", neograph.Int(2)) // always conflicts
		tx.Abort()
	}
	if sinkErr == nil {
		b.Fatal("expected conflicts")
	}
	_ = fmt.Sprint()
}
