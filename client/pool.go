package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/internal/metrics"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// ErrNoPrimary reports that no reachable fleet member holds the primary
// (or standalone) role — the cluster is mid-election or down. Write
// surfaces it once its discovery backoff is exhausted; callers should
// retry later rather than immediately.
var ErrNoPrimary = errors.New("client: no reachable primary in the fleet")

// Policy selects how a Pool routes read sessions over the replica fleet.
type Policy int

const (
	// LeastLag routes reads to the replica whose last probed applied LSN
	// is highest (freshest data, shortest read-your-writes wait).
	LeastLag Policy = iota
	// RoundRobin rotates reads evenly across replicas.
	RoundRobin
)

// PoolConfig configures a Pool.
type PoolConfig struct {
	// Primary is the primary server's client address.
	Primary string
	// Replicas are replica server client addresses (any number, may be
	// empty — reads then fall through to the primary).
	Replicas []string
	// Policy selects replica read routing; default LeastLag.
	Policy Policy
	// ConnsPerHost caps concurrent sessions per server; default 2.
	ConnsPerHost int
	// ProbeEvery is the period of the background topology probe that
	// refreshes per-replica applied positions (least-lag routing) and
	// roles; default 250ms.
	ProbeEvery time.Duration
	// Metrics, when non-nil, receives the pool's routing counters
	// (reads by route, availability skips, failovers, overload backoffs).
	Metrics *metrics.Registry
	// Tracer, when non-nil, head-samples a root span per Write/Read. The
	// root spans the whole routed operation — overload backoffs, primary
	// re-discovery and the retry all record under ONE trace ID — and the
	// sessions fn borrows join it automatically.
	Tracer *trace.Tracer
	// Partitioned marks this pool as serving one partition of a
	// partitioned fleet (set by the Router). Cluster announcements then
	// carry members of EVERY partition; the pool folds in only members
	// of its own PartitionID — node IDs are unique per replication
	// group, not fleet-wide, so membership is keyed (NodeID, PartitionID).
	Partitioned bool
	// PartitionID is the partition this pool serves when Partitioned.
	PartitionID uint32
}

// poolMetrics counts routing decisions; nil when no registry is given.
type poolMetrics struct {
	readsReplica, readsPrimary *metrics.Counter
	readSkips                  *metrics.Counter
	writeFailovers             *metrics.Counter
	overloadBackoffs           *metrics.Counter
}

func newPoolMetrics(reg *metrics.Registry) *poolMetrics {
	return &poolMetrics{
		readsReplica: reg.Counter("neograph_pool_reads_total",
			"pool reads by serving route", metrics.L("route", "replica")),
		readsPrimary: reg.Counter("neograph_pool_reads_total",
			"pool reads by serving route", metrics.L("route", "primary")),
		readSkips: reg.Counter("neograph_pool_read_skips_total",
			"read candidates skipped for availability errors"),
		writeFailovers: reg.Counter("neograph_pool_write_failovers_total",
			"writes that triggered primary re-discovery"),
		overloadBackoffs: reg.Counter("neograph_pool_overload_backoffs_total",
			"write retries backed off on server overload"),
	}
}

// host is one server address with a bounded session free-list.
type host struct {
	addr string
	free chan *Client
	sem  chan struct{} // dial permits: len(sem) sessions exist
	// applied is the last probed applied LSN (least-lag routing).
	applied atomic.Uint64
	// primary is the last probed role (true = accepts writes).
	primary atomic.Bool
	// closed stops new dials and makes releases close instead of park —
	// without it, a session in flight during Pool.Close would be parked
	// back into the just-drained free-list and leak its connection.
	closed atomic.Bool
}

func newHost(addr string, conns int) *host {
	return &host{
		addr: addr,
		free: make(chan *Client, conns),
		sem:  make(chan struct{}, conns),
	}
}

// acquire returns a pooled session, dialing a new one when under the
// per-host cap, else waiting for a release.
func (h *host) acquire(ctx context.Context) (*Client, error) {
	if h.closed.Load() {
		return nil, errors.New("client: pool closed")
	}
	select {
	case c := <-h.free:
		return c, nil
	default:
	}
	select {
	case c := <-h.free:
		return c, nil
	case h.sem <- struct{}{}:
		c, err := Dial(ctx, h.addr)
		if err != nil {
			<-h.sem
			return nil, err
		}
		return c, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a session to the free-list; broken sessions, sessions
// abandoned mid-transaction (the next borrower would silently stage
// writes into the leftover transaction) and any session released after
// close are closed and their dial permit freed.
func (h *host) release(c *Client) {
	if c.Broken() || c.InTx() || h.closed.Load() {
		c.Close()
		<-h.sem
		return
	}
	select {
	case h.free <- c:
	default: // cap shrank? should not happen; drop the session
		c.Close()
		<-h.sem
	}
	// A close may have raced the park above; re-drain so the session
	// cannot sit in a free-list nobody will ever read again.
	if h.closed.Load() {
		h.closeAll()
	}
}

// closeAll closes every idle session.
func (h *host) closeAll() {
	for {
		select {
		case c := <-h.free:
			c.Close()
			<-h.sem
		default:
			return
		}
	}
}

// Pool is a topology-aware client over a primary and its replica fleet.
// Reads route to replicas (by Policy), writes to the primary. The pool
// remembers the newest commit LSN per causality token and injects it as
// the read-your-writes gate on reads carrying that token, so a session
// always observes its own writes even from a lagging replica. When a
// write fails because the primary died or was demoted, the pool probes
// ReplStatus across every known address, re-discovers the (promoted)
// primary and retries once.
//
// A Pool is safe for concurrent use.
type Pool struct {
	cfg PoolConfig
	pm  *poolMetrics // nil without PoolConfig.Metrics

	mu       sync.Mutex
	primary  *host
	replicas []*host
	hosts    map[string]*host
	members  map[memberKey]string // (NodeID, PartitionID) -> first announced addr
	tokens   map[string]uint64    // causality token -> newest commit LSN
	closed   bool

	rr        atomic.Uint32
	probeStop chan struct{}
	probeDone chan struct{}
}

// OpenPool dials the fleet and verifies the configured primary actually
// holds the primary (or standalone) role — if it does not, the pool
// discovers the real primary among the configured addresses.
func OpenPool(ctx context.Context, cfg PoolConfig) (*Pool, error) {
	if cfg.Primary == "" {
		return nil, errors.New("client: pool needs a primary address")
	}
	if cfg.ConnsPerHost <= 0 {
		cfg.ConnsPerHost = 2
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 250 * time.Millisecond
	}
	p := &Pool{
		cfg:       cfg,
		hosts:     make(map[string]*host),
		members:   make(map[memberKey]string),
		tokens:    make(map[string]uint64),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	if cfg.Metrics != nil {
		p.pm = newPoolMetrics(cfg.Metrics)
	}
	p.primary = p.hostFor(cfg.Primary)
	for _, addr := range cfg.Replicas {
		if addr == cfg.Primary {
			continue
		}
		p.replicas = append(p.replicas, p.hostFor(addr))
	}
	// Discovery retries within the caller's context: a fleet that is
	// still binding its listeners (rolling start, failover in progress)
	// becomes reachable moments later. Without a deadline the attempts
	// are capped instead of spinning forever.
	var derr error
	for attempt := 0; ; attempt++ {
		if _, derr = p.discoverPrimary(ctx); derr == nil {
			break
		}
		_, hasDeadline := ctx.Deadline()
		if (!hasDeadline && attempt >= 4) || ctx.Err() != nil {
			// The probe loop has not started yet: satisfy Close's
			// handshake so the failed-open cleanup cannot deadlock on it.
			close(p.probeDone)
			p.Close()
			return nil, derr
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
		}
	}
	go p.probeLoop()
	return p, nil
}

// hostFor returns (creating if needed) the host for addr.
func (p *Pool) hostFor(addr string) *host {
	if h, ok := p.hosts[addr]; ok {
		return h
	}
	h := newHost(addr, p.cfg.ConnsPerHost)
	p.hosts[addr] = h
	return h
}

// Close releases every pooled session and stops the topology probe.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	hosts := make([]*host, 0, len(p.hosts))
	for _, h := range p.hosts {
		hosts = append(hosts, h)
	}
	p.mu.Unlock()
	close(p.probeStop)
	<-p.probeDone
	for _, h := range hosts {
		h.closed.Store(true)
		h.closeAll()
	}
	return nil
}

// PrimaryAddr returns the address currently routed writes.
func (p *Pool) PrimaryAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.primary.addr
}

// HostStatus is one fleet member's probe result.
type HostStatus struct {
	Addr   string
	Status neograph.ReplStatus
	Err    error
}

// FleetStatus probes ReplStatus on every known address directly — no
// read-your-writes gate, no routing — for diagnostics: exactly the view
// an operator needs when a replica is lagging or wedged.
func (p *Pool) FleetStatus(ctx context.Context) []HostStatus {
	p.mu.Lock()
	hosts := make([]*host, 0, len(p.hosts))
	for _, h := range p.hosts {
		hosts = append(hosts, h)
	}
	p.mu.Unlock()
	out := make([]HostStatus, 0, len(hosts))
	for _, h := range hosts {
		hs := HostStatus{Addr: h.addr}
		if c, err := h.acquire(ctx); err != nil {
			hs.Err = err
		} else {
			hs.Status, hs.Err = c.ReplStatus(ctx)
			h.release(c)
		}
		out = append(out, hs)
	}
	return out
}

// Token returns the newest commit LSN recorded for a causality token.
func (p *Pool) Token(token string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tokens[token]
}

// noteLSN records a token's newest commit position (monotonic).
func (p *Pool) noteLSN(token string, lsn uint64) {
	if token == "" || lsn == 0 {
		return
	}
	p.mu.Lock()
	if lsn > p.tokens[token] {
		p.tokens[token] = lsn
	}
	p.mu.Unlock()
}

// probeLoop periodically refreshes every host's role and applied LSN —
// the freshness data least-lag routing and primary re-discovery use.
func (p *Pool) probeLoop() {
	defer close(p.probeDone)
	tick := time.NewTicker(p.cfg.ProbeEvery)
	defer tick.Stop()
	for {
		select {
		case <-p.probeStop:
			return
		case <-tick.C:
		}
		p.mu.Lock()
		hosts := make([]*host, 0, len(p.hosts))
		for _, h := range p.hosts {
			hosts = append(hosts, h)
		}
		p.mu.Unlock()
		for _, h := range hosts {
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeEvery)
			p.probeHost(ctx, h)
			cancel()
		}
	}
}

// probeHost refreshes one host's cached role/applied position and keeps
// the read rotation in sync with probed roles: a demoted ex-primary that
// comes back as a replica rejoins the rotation, and a host that turned
// primary leaves it.
func (p *Pool) probeHost(ctx context.Context, h *host) {
	c, err := h.acquire(ctx)
	if err != nil {
		return
	}
	// Prefer the cluster controller's view: it carries the announced
	// membership, so the pool learns nodes that were never in its seed
	// list (and can find a post-failover primary among them). Nodes
	// without a controller answer repl_status instead.
	var role string
	var applied uint64
	if ci, cerr := c.ClusterStatus(ctx); cerr == nil {
		role, applied = ci.Role, ci.AppliedLSN
		p.mergeMembers(ci.Members)
	} else {
		st, rerr := c.ReplStatus(ctx)
		if rerr != nil {
			h.release(c)
			return
		}
		role, applied = st.Role, st.AppliedLSN
	}
	h.release(c)
	h.applied.Store(applied)
	isPrimary := role == "primary" || role == "standalone"
	h.primary.Store(isPrimary)

	p.mu.Lock()
	idx := -1
	for i, r := range p.replicas {
		if r == h {
			idx = i
			break
		}
	}
	switch {
	case role == "replica" && idx < 0 && h != p.primary:
		p.replicas = append(p.replicas, h)
	case isPrimary && idx >= 0:
		p.replicas = append(p.replicas[:idx], p.replicas[idx+1:]...)
	}
	p.mu.Unlock()
}

// memberKey identifies one announced fleet member. Node IDs are unique
// within a replication group but may repeat across partitions, so the
// partition is part of the identity.
type memberKey struct {
	node uint64
	part uint32
}

// mergeMembers folds a cluster_status announcement's membership into the
// host set. New hosts join the probe rotation and are classified (and
// added to the read rotation) by their own first probe. On a partitioned
// fleet, members of other partitions are skipped (their groups have their
// own pools), and a member re-announced under a known (NodeID,
// PartitionID) pair at a different address is ignored until the original
// address drops out — two partitions reusing a node ID must never
// collapse into one host.
func (p *Pool) mergeMembers(members []wire.ClusterMember) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	for _, m := range members {
		if m.Addr == "" {
			continue
		}
		if p.cfg.Partitioned && m.PartitionID != p.cfg.PartitionID {
			continue
		}
		if m.NodeID != 0 {
			key := memberKey{node: m.NodeID, part: m.PartitionID}
			if prev, ok := p.members[key]; ok && prev != m.Addr {
				continue
			}
			p.members[key] = m.Addr
		}
		p.hostFor(m.Addr)
	}
}

// readOrder returns replica candidates by policy, primary appended as
// the fallback of last resort.
func (p *Pool) readOrder() []*host {
	p.mu.Lock()
	replicas := append([]*host(nil), p.replicas...)
	primary := p.primary
	p.mu.Unlock()
	switch p.cfg.Policy {
	case RoundRobin:
		if n := len(replicas); n > 1 {
			// Modulo in uint32: int() of a large counter is negative on
			// 32-bit platforms and would index out of bounds.
			start := int(p.rr.Add(1) % uint32(n))
			rot := make([]*host, 0, n)
			rot = append(rot, replicas[start:]...)
			rot = append(rot, replicas[:start]...)
			replicas = rot
		}
	default: // LeastLag: freshest replica first
		for i := 1; i < len(replicas); i++ {
			for j := i; j > 0 && replicas[j].applied.Load() > replicas[j-1].applied.Load(); j-- {
				replicas[j], replicas[j-1] = replicas[j-1], replicas[j]
			}
		}
	}
	// The current primary serves reads when no replica can.
	out := replicas
	if primary != nil {
		out = append(out, primary)
	}
	return out
}

// Read runs fn on a read session routed to the replica fleet. The
// causality token's newest commit LSN is injected as the session's
// read-your-writes gate, so fn observes every write previously recorded
// under that token. A dead replica is skipped for the next candidate;
// the primary is the final fallback. Semantic errors from fn (not-found,
// conflicts) return immediately without re-routing.
func (p *Pool) Read(ctx context.Context, token string, fn func(c *Client) error) error {
	sp := p.cfg.Tracer.StartRoot("pool.read")
	defer sp.Finish()
	ctx = trace.ContextWith(ctx, sp)
	gate := p.Token(token)
	p.mu.Lock()
	primary := p.primary
	p.mu.Unlock()
	var lastErr error
	for _, h := range p.readOrder() {
		c, err := h.acquire(ctx)
		if err != nil {
			lastErr = err
			if p.pm != nil {
				p.pm.readSkips.Inc()
			}
			continue
		}
		c.ReadAfter(gate)
		c.span = trace.SpanFrom(ctx)
		err = fn(c)
		c.span = nil
		c.ReadAfter(0)
		broken := c.Broken()
		h.release(c)
		if err == nil {
			if p.pm != nil {
				if h == primary {
					p.pm.readsPrimary.Inc()
				} else {
					p.pm.readsReplica.Inc()
				}
			}
			return nil
		}
		lastErr = err
		if !broken && !isAvailabilityErr(err) {
			return err // the server answered; fn's error is real
		}
		if p.pm != nil {
			p.pm.readSkips.Inc()
		}
	}
	if lastErr == nil {
		lastErr = errors.New("client: pool has no hosts")
	}
	return fmt.Errorf("client: pool read: %w", lastErr)
}

// Write runs fn on a session to the primary and records the newest
// commit LSN under the causality token. If the primary is unreachable or
// answers ErrReadOnlyReplica (it was demoted, or a replica was promoted
// elsewhere), the pool re-discovers the primary by probing ReplStatus
// across every known address and retries fn once on the new one.
//
// The retry makes Write AT-LEAST-ONCE: a transport failure can strike
// after the server committed but before the response arrived, in which
// case the retry re-executes fn. Callers for whom duplicate execution
// matters should make fn idempotent (e.g. keyed upserts) or disable
// ambiguity by using a plain Client and treating transport errors as
// in-doubt.
//
// A primary answering ErrOverloaded is alive but shedding load — the
// pool backs off (jittered, doubling, context-bounded) and retries a
// few times rather than hammering it; if the overload persists the
// ErrOverloaded surfaces to the caller.
func (p *Pool) Write(ctx context.Context, token string, fn func(c *Client) error) error {
	// One root span covers the whole routed write: every attempt's calls,
	// the backoffs and the post-failover retry share its trace ID.
	sp := p.cfg.Tracer.StartRoot("pool.write")
	defer sp.Finish()
	ctx = trace.ContextWith(ctx, sp)
	backoff := overloadBackoffMin
	for attempt := 0; ; attempt++ {
		err := p.writeOnce(ctx, token, fn)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrOverloaded) {
			if attempt >= overloadRetries {
				return err
			}
			if p.pm != nil {
				p.pm.overloadBackoffs.Inc()
			}
			select {
			case <-time.After(jitteredDelay(backoff)):
			case <-ctx.Done():
				return fmt.Errorf("client: pool write: %w", ctx.Err())
			}
			if backoff *= 2; backoff > overloadBackoffMax {
				backoff = overloadBackoffMax
			}
			continue
		}
		if !p.shouldFailover(err) {
			return err
		}
		if p.pm != nil {
			p.pm.writeFailovers.Inc()
		}
		// Re-discover the primary. Mid-election there is none: every node
		// answers "replica", discoverPrimary returns ErrNoPrimary, and
		// hammering the fleet just delays the election. Back off (jittered,
		// doubling, context-bounded) and re-probe until a node wins.
		dback := discoverBackoffMin
		var derr error
		for dattempt := 0; ; dattempt++ {
			if _, derr = p.discoverPrimary(ctx); derr == nil {
				break
			}
			if !errors.Is(derr, ErrNoPrimary) || dattempt >= discoverRetries {
				return fmt.Errorf("client: pool write failed (%v) and no primary found: %w", err, derr)
			}
			select {
			case <-time.After(jitteredDelay(dback)):
			case <-ctx.Done():
				return fmt.Errorf("client: pool write: %w: %w", ErrNoPrimary, ctx.Err())
			}
			if dback *= 2; dback > discoverBackoffMax {
				dback = discoverBackoffMax
			}
		}
		return p.writeOnce(ctx, token, fn)
	}
}

// Discovery backoff bounds: while an election is in flight the fleet has
// no primary, so failed discovery retries wait ~discoverBackoffMin,
// doubling up to discoverBackoffMax, for at most discoverRetries retries
// before ErrNoPrimary surfaces to the caller.
const (
	discoverBackoffMin = 25 * time.Millisecond
	discoverBackoffMax = time.Second
	discoverRetries    = 8
)

// Overload backoff bounds: the first retry waits ~overloadBackoffMin,
// doubling per attempt up to overloadBackoffMax, for at most
// overloadRetries retries before ErrOverloaded surfaces.
const (
	overloadBackoffMin = 5 * time.Millisecond
	overloadBackoffMax = 250 * time.Millisecond
	overloadRetries    = 6
)

// jitteredDelay spreads one backoff uniformly over [d/2, d] so a herd of
// rejected writers doesn't retry in lockstep.
func jitteredDelay(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// writeOnce runs fn against the current primary.
func (p *Pool) writeOnce(ctx context.Context, token string, fn func(c *Client) error) error {
	p.mu.Lock()
	h := p.primary
	p.mu.Unlock()
	c, err := h.acquire(ctx)
	if err != nil {
		return fmt.Errorf("client: pool write: %w", err)
	}
	// Sessions are recycled across tokens and carry their newest commit
	// LSN; credit the token only with commits fn itself performed, not a
	// previous borrower's leftovers.
	before := c.LastCommitLSN()
	c.span = trace.SpanFrom(ctx)
	err = fn(c)
	c.span = nil
	if after := c.LastCommitLSN(); after > before {
		p.noteLSN(token, after)
	}
	h.release(c)
	return err
}

// shouldFailover reports whether a write error means the primary moved:
// the node is gone (transport error) or explicitly read-only (demoted /
// never promoted).
func (p *Pool) shouldFailover(err error) bool {
	return errors.Is(err, neograph.ErrReadOnlyReplica) ||
		errors.Is(err, ErrBroken) ||
		isTransportErr(err)
}

// isAvailabilityErr detects server-answered errors that mean "this host
// cannot serve the read right now" rather than "the read is wrong": a
// draining server shedding its gated waiters, or a replica too far
// behind to satisfy the read-your-writes gate in time. Another candidate
// (or the primary fallback) may well serve the same read. Classified by
// the wire error code (mapped to ErrUnavailable / ErrOverloaded
// client-side) — an overloaded replica is shedding load, so the read
// should try the next candidate rather than fail.
func isAvailabilityErr(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrOverloaded)
}

// isTransportErr detects connection-level failures (dial refused, reset,
// EOF, poisoned session) as opposed to server-answered errors.
func isTransportErr(err error) bool {
	var be *BatchError
	if errors.As(err, &be) {
		return false // server answered with a per-op failure
	}
	s := err.Error()
	for _, marker := range []string{
		"client: dial:", "client: send:", "client: recv:", "connection refused",
		"connection reset", "broken pipe", "EOF", "use of closed",
	} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}

// discoverPrimary probes ReplStatus on every known address and routes
// writes to the first one holding the primary (or standalone) role —
// after a failover Promote, that is the promoted replica. The demoted
// address stays in the host set (it may come back as a replica).
func (p *Pool) discoverPrimary(ctx context.Context) (string, error) {
	p.mu.Lock()
	ordered := make([]*host, 0, len(p.hosts))
	ordered = append(ordered, p.primary)
	for _, h := range p.replicas {
		ordered = append(ordered, h)
	}
	for _, h := range p.hosts {
		seen := false
		for _, o := range ordered {
			if o == h {
				seen = true
				break
			}
		}
		if !seen {
			ordered = append(ordered, h)
		}
	}
	p.mu.Unlock()

	for _, h := range ordered {
		probeCtx := ctx
		var cancel context.CancelFunc
		if _, ok := ctx.Deadline(); !ok {
			probeCtx, cancel = context.WithTimeout(ctx, 2*time.Second)
		}
		c, err := h.acquire(probeCtx)
		if err != nil {
			if cancel != nil {
				cancel()
			}
			continue
		}
		st, err := c.ReplStatus(probeCtx)
		h.release(c)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			continue
		}
		h.applied.Store(st.AppliedLSN)
		isPrimary := st.Role == "primary" || st.Role == "standalone"
		h.primary.Store(isPrimary)
		if !isPrimary {
			continue
		}
		p.mu.Lock()
		p.primary = h
		// Reads must not route to the write master unless nothing else
		// can serve them; drop it from the replica rotation.
		replicas := p.replicas[:0]
		for _, r := range p.replicas {
			if r != h {
				replicas = append(replicas, r)
			}
		}
		p.replicas = replicas
		p.mu.Unlock()
		return h.addr, nil
	}
	return "", ErrNoPrimary
}
