package client

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"neograph"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// ErrNoPartitionOwner reports that a specific partition has no reachable
// primary. It surfaces only once the context deadline is exhausted (or
// the capped retries without a deadline): a partition mid-failover
// usually elects a new primary within a probe interval, so the Router
// keeps retrying until then. Match with errors.Is and extract the
// partition with errors.As on *NoPartitionOwnerError.
var ErrNoPartitionOwner = errors.New("client: no reachable primary for partition")

// NoPartitionOwnerError is the structured form of ErrNoPartitionOwner:
// which partition had no owner, and the last routing error underneath.
type NoPartitionOwnerError struct {
	Partition uint32
	Err       error
}

func (e *NoPartitionOwnerError) Error() string {
	return fmt.Sprintf("client: no reachable primary for partition %d: %v", e.Partition, e.Err)
}

func (e *NoPartitionOwnerError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrNoPartitionOwner) match.
func (e *NoPartitionOwnerError) Is(target error) bool { return target == ErrNoPartitionOwner }

// RouterConfig configures a Router.
type RouterConfig struct {
	// Partitions is the fleet map: every partition's replication group
	// and its client addresses. The first address of each group seeds
	// that group's primary discovery (any member works — the group pool
	// discovers the real primary).
	Partitions wire.PartitionMap
	// Policy, ConnsPerHost, ProbeEvery and Tracer apply to every
	// per-partition pool; see PoolConfig. (Pool routing metrics are
	// per-group: register a registry on an individual pool's config via
	// Pool(part) diagnostics instead of here — the per-pool counters
	// share names and would collide in one registry.)
	Policy       Policy
	ConnsPerHost int
	ProbeEvery   time.Duration
	// Tracer head-samples one root span per routed operation.
	Tracer *trace.Tracer
}

// Router is a partition-aware client over a hash-partitioned fleet: one
// Pool per partition's replication group. Single-entity operations hash
// to the owning partition (writes to its primary, reads to its
// least-lag replica); batches go to the partition owning most of their
// anchored ops, whose server coordinates any cross-partition ops with
// two-phase commit; scans fan out across every partition.
//
// Causality tokens span partitions: a token's read-your-writes gate is
// per-pool (LSNs are per-partition WALs), so reads through the Router
// observe the session's own writes on every partition it wrote to.
//
// A Router is safe for concurrent use.
type Router struct {
	pools []*Pool // index == partition ID
	rr    atomic.Uint32
}

// OpenRouter dials every partition's group and discovers each primary.
// Groups are opened concurrently; one unreachable group fails the open
// (a partitioned fleet with a dead partition cannot serve hash-routed
// writes anyway).
func OpenRouter(ctx context.Context, cfg RouterConfig) (*Router, error) {
	n := cfg.Partitions.Count
	if n < 1 || len(cfg.Partitions.Groups) != n {
		return nil, fmt.Errorf("client: router needs a complete partition map (count=%d, groups=%d)",
			n, len(cfg.Partitions.Groups))
	}
	r := &Router{pools: make([]*Pool, n)}
	errs := make(chan error, n)
	for _, g := range cfg.Partitions.Groups {
		if int(g.ID) >= n || len(g.Addrs) == 0 {
			return nil, fmt.Errorf("client: bad partition group %d (ids must be 0..%d, each with addresses)", g.ID, n-1)
		}
		go func(g wire.PartitionGroup) {
			p, err := OpenPool(ctx, PoolConfig{
				Primary:      g.Addrs[0],
				Replicas:     g.Addrs[1:],
				Policy:       cfg.Policy,
				ConnsPerHost: cfg.ConnsPerHost,
				ProbeEvery:   cfg.ProbeEvery,
				Tracer:       cfg.Tracer,
				Partitioned:  true,
				PartitionID:  g.ID,
			})
			if err != nil {
				errs <- fmt.Errorf("client: partition %d: %w", g.ID, err)
				return
			}
			r.pools[g.ID] = p
			errs <- nil
		}(g)
	}
	var firstErr error
	for range cfg.Partitions.Groups {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		r.Close()
		return nil, firstErr
	}
	return r, nil
}

// Close releases every partition pool.
func (r *Router) Close() error {
	for _, p := range r.pools {
		if p != nil {
			p.Close()
		}
	}
	return nil
}

// Count returns the partition count.
func (r *Router) Count() int { return len(r.pools) }

// PartitionOf maps an entity ID to its owning partition.
func (r *Router) PartitionOf(id uint64) uint32 {
	if len(r.pools) <= 1 {
		return 0
	}
	return uint32(id % uint64(len(r.pools)))
}

// Pool returns the pool serving one partition, for direct access
// (FleetStatus, PrimaryAddr, per-partition diagnostics).
func (r *Router) Pool(part uint32) *Pool {
	if int(part) >= len(r.pools) {
		return nil
	}
	return r.pools[part]
}

// Token returns the newest commit LSN recorded for a causality token on
// one partition (LSNs are per-partition WAL positions).
func (r *Router) Token(part uint32, token string) uint64 {
	if p := r.Pool(part); p != nil {
		return p.Token(token)
	}
	return 0
}

// Write runs fn on a session to the primary owning id. Use this for
// operations anchored to an existing entity; for creations (no ID yet)
// use WriteAny. Cross-partition relationship creation goes through the
// start node's partition — its server coordinates the commit.
func (r *Router) Write(ctx context.Context, token string, id uint64, fn func(c *Client) error) error {
	return r.write(ctx, r.PartitionOf(id), token, fn)
}

// WriteAny runs fn on some partition's primary, rotating round-robin —
// the right routing for creations, which any partition can own. The
// partition chosen is passed to fn's session; the IDs it creates belong
// to that partition.
func (r *Router) WriteAny(ctx context.Context, token string, fn func(c *Client) error) error {
	part := uint32(r.rr.Add(1)) % uint32(len(r.pools))
	return r.write(ctx, part, token, fn)
}

// write routes one write to a partition, absorbing ErrNoPrimary until
// the deadline: a group mid-election elects within a probe interval, so
// "no primary right now" is worth retrying. With no deadline the
// retries are capped. What finally surfaces is the structured
// *NoPartitionOwnerError.
func (r *Router) write(ctx context.Context, part uint32, token string, fn func(c *Client) error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = r.pools[part].Write(ctx, token, fn)
		if err == nil || !errors.Is(err, ErrNoPrimary) {
			return err
		}
		_, hasDeadline := ctx.Deadline()
		if ctx.Err() != nil || (!hasDeadline && attempt >= 2) {
			return &NoPartitionOwnerError{Partition: part, Err: err}
		}
		select {
		case <-time.After(jitteredDelay(100 * time.Millisecond)):
		case <-ctx.Done():
			return &NoPartitionOwnerError{Partition: part, Err: err}
		}
	}
}

// Read runs fn on a read session routed to the fleet of the partition
// owning id (least-lag replica first, primary fallback), gated on the
// token's newest commit LSN for that partition.
func (r *Router) Read(ctx context.Context, token string, id uint64, fn func(c *Client) error) error {
	return r.pools[r.PartitionOf(id)].Read(ctx, token, fn)
}

// ReadEach runs fn once per partition on a read session to that
// partition's fleet — the fan-out primitive for scans (nodes_by_label,
// all_nodes): each partition sees only its own slice of the ID space,
// so a global answer is the union of per-partition answers. Partitions
// run sequentially in ID order; the first error stops the fan-out.
func (r *Router) ReadEach(ctx context.Context, token string, fn func(part uint32, c *Client) error) error {
	for part := range r.pools {
		p := uint32(part)
		if err := r.pools[part].Read(ctx, token, func(c *Client) error { return fn(p, c) }); err != nil {
			return fmt.Errorf("client: partition %d: %w", part, err)
		}
	}
	return nil
}

// NodesByLabel scans every partition and merges the results — the
// partitioned form of Client.NodesByLabel.
func (r *Router) NodesByLabel(ctx context.Context, token, label string) ([]neograph.NodeID, error) {
	var out []neograph.NodeID
	err := r.ReadEach(ctx, token, func(_ uint32, c *Client) error {
		ids, err := c.NodesByLabel(ctx, label)
		out = append(out, ids...)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunBatch routes a batch to its home partition — the partition owning
// the most ID-anchored ops (creations and back references follow the
// batch; ties and all-creation batches rotate round-robin) — and runs
// it there. The home server executes single-partition batches on the
// ordinary fast path and coordinates cross-partition ones with
// two-phase commit, so the caller gets one atomic result either way.
func (r *Router) RunBatch(ctx context.Context, token string, b *Batch) (*BatchResults, error) {
	part := r.homePartition(b)
	var res *BatchResults
	err := r.write(ctx, part, token, func(c *Client) error {
		var err error
		res, err = c.RunBatch(ctx, b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// homePartition picks the partition owning the most ID-anchored ops of
// a batch. Sending the batch where most of it lives makes the common
// case (everything one partition) the ordinary local commit and
// minimizes 2PC participants otherwise.
func (r *Router) homePartition(b *Batch) uint32 {
	n := uint64(len(r.pools))
	if n <= 1 {
		return 0
	}
	votes := make([]int, n)
	for i := range b.reqs {
		op := &b.reqs[i]
		switch op.Op {
		case wire.OpCreateNode, wire.OpPing:
			// follows the home partition
		case wire.OpCreateRel:
			if op.StartRef == nil {
				votes[op.Start%n]++
			}
		case wire.OpNodesByLabel, wire.OpNodesByProp, wire.OpAllNodes:
			// scans don't anchor (and don't belong in routed batches)
		default:
			if op.IDRef == nil {
				votes[op.ID%n]++
			}
		}
	}
	best, bestVotes := -1, 0
	for part, v := range votes {
		if v > bestVotes {
			best, bestVotes = part, v
		}
	}
	if best < 0 {
		return uint32(r.rr.Add(1)) % uint32(n)
	}
	return uint32(best)
}
