package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"neograph"
	. "neograph/client"
	"neograph/internal/cluster"
	"neograph/internal/server"
)

// fleet is one primary and two replicas, each behind a server.
type fleet struct {
	pdb, r1db, r2db    *neograph.DB
	psrv, r1srv, r2srv *server.Server
	replAddr           string // the primary's WAL-shipping address
}

// startFleet builds a 1-primary/2-replica fleet under synchronous quorum
// 1, so an acknowledged write is durable on at least one replica and a
// failover promotion can lose nothing acknowledged.
func startFleet(t *testing.T) *fleet {
	t.Helper()
	f := &fleet{}
	var err error
	f.pdb, err = neograph.Open(neograph.Options{
		Dir:             t.TempDir(),
		ReplicationAddr: "127.0.0.1:0",
		SyncReplicas:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.pdb.Close() })
	f.replAddr = f.pdb.ReplicationAddress()
	f.psrv, err = server.New(f.pdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.psrv.Close() })

	open := func(dir string) (*neograph.DB, *server.Server) {
		db, err := neograph.Open(neograph.Options{Dir: dir, ReplicaOf: f.replAddr})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		srv, err := server.New(db, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return db, srv
	}
	f.r1db, f.r1srv = open(t.TempDir())
	f.r2db, f.r2srv = open(t.TempDir())
	return f
}

func (f *fleet) poolConfig(policy Policy) PoolConfig {
	return PoolConfig{
		Primary:    f.psrv.Addr(),
		Replicas:   []string{f.r1srv.Addr(), f.r2srv.Addr()},
		Policy:     policy,
		ProbeEvery: 50 * time.Millisecond,
	}
}

func TestPoolRoutesReadsToReplicas(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var id neograph.NodeID
	err = p.Write(ctx, "u", func(c *Client) error {
		var err error
		id, err = c.CreateNode(ctx, []string{"Routed"}, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Token("u") == 0 {
		t.Fatal("write recorded no causality token LSN")
	}

	// Round-robin reads rotate across both replicas; the primary serves
	// no read while replicas are healthy.
	served := map[string]int{}
	for i := 0; i < 6; i++ {
		err := p.Read(ctx, "u", func(c *Client) error {
			served[c.RemoteAddr().String()]++
			_, err := c.GetNode(ctx, id)
			return err // read-your-writes: gated on the token's LSN
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if served[f.psrv.Addr()] != 0 {
		t.Errorf("primary served %d reads with healthy replicas", served[f.psrv.Addr()])
	}
	if served[f.r1srv.Addr()] == 0 || served[f.r2srv.Addr()] == 0 {
		t.Errorf("round-robin did not rotate: %v", served)
	}
}

func TestPoolLeastLagPrefersFreshReplica(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Write(ctx, "", func(c *Client) error {
		_, err := c.CreateNode(ctx, nil, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Both replicas are live; least-lag must pick a replica, not the
	// primary fallback.
	var addr string
	if err := p.Read(ctx, "", func(c *Client) error {
		addr = c.RemoteAddr().String()
		_, err := c.AllNodes(ctx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if addr == f.psrv.Addr() {
		t.Error("least-lag routed a read to the primary with live replicas")
	}
}

func TestPoolReadsFallBackToPrimary(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	// Replicas are configured but their servers are gone: reads must fall
	// through to the primary instead of failing.
	f.r1srv.Close()
	f.r2srv.Close()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"OnlyPrimary"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var addr string
	if err := p.Read(ctx, "u", func(c *Client) error {
		addr = c.RemoteAddr().String()
		ids, err := c.NodesByLabel(ctx, "OnlyPrimary")
		if err == nil && len(ids) != 1 {
			return fmt.Errorf("read %d nodes, want 1", len(ids))
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if addr != f.psrv.Addr() {
		t.Errorf("read served by %s, want primary %s", addr, f.psrv.Addr())
	}
}

// TestPoolFailover is the acceptance scenario: kill the primary, promote
// the most-advanced replica, and the pool (a) keeps serving reads
// throughout, (b) re-discovers the new primary and resumes writes, and
// (c) loses no acknowledged write — read-your-writes tokens recorded
// before the failover still gate correctly across the epoch bump.
func TestPoolFailover(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const before = 20
	for i := 0; i < before; i++ {
		if err := p.Write(ctx, "u", func(c *Client) error {
			_, err := c.CreateNode(ctx, []string{"Acked"}, neograph.Props{"i": neograph.Int(int64(i))})
			return err
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	preToken := p.Token("u")
	if preToken == 0 {
		t.Fatal("no token LSN recorded")
	}

	// Primary dies hard.
	f.psrv.Close()
	f.pdb.Crash()

	// Reads keep working against the replica fleet (gated on the token,
	// so every acknowledged write is observed).
	if err := p.Read(ctx, "u", func(c *Client) error {
		ids, err := c.NodesByLabel(ctx, "Acked")
		if err != nil {
			return err
		}
		if len(ids) != before {
			return fmt.Errorf("replica read saw %d acked nodes, want %d", len(ids), before)
		}
		return nil
	}); err != nil {
		t.Fatalf("read during primary outage: %v", err)
	}

	// Operator promotes the most-advanced replica onto the dead
	// primary's shipping address, over the wire, so the survivor
	// re-points automatically.
	promoteDB, promoteSrv := f.r1db, f.r1srv
	if f.r2db.AppliedLSN() > f.r1db.AppliedLSN() {
		promoteDB, promoteSrv = f.r2db, f.r2srv
	}
	cl, err := Dial(ctx, promoteSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Promote(ctx, f.replAddr)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if st.Role != "primary" {
		t.Fatalf("post-promotion role = %q", st.Role)
	}

	// Writes resume: the first attempt hits the dead primary, the pool
	// probes ReplStatus across the fleet and retries on the new one.
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"Acked"}, neograph.Props{"i": neograph.Int(before)})
		return err
	}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if got := p.PrimaryAddr(); got != promoteSrv.Addr() {
		t.Errorf("pool primary = %s, want promoted %s", got, promoteSrv.Addr())
	}
	if p.Token("u") <= preToken {
		t.Errorf("token LSN did not advance across the epoch bump: %d -> %d", preToken, p.Token("u"))
	}

	// Zero client-visible lost acknowledged writes: every pre-failover
	// write plus the post-failover one is readable, token-gated.
	if err := p.Read(ctx, "u", func(c *Client) error {
		ids, err := c.NodesByLabel(ctx, "Acked")
		if err != nil {
			return err
		}
		if len(ids) != before+1 {
			return fmt.Errorf("saw %d acked nodes after failover, want %d", len(ids), before+1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = promoteDB
}

// TestPoolTokenNotCreditedWithStrangerWrites: sessions are recycled
// across causality tokens; a token whose fn performed no commit must not
// inherit the session's previous borrower's commit LSN as a read gate.
func TestPoolTokenNotCreditedWithStrangerWrites(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	cfg := f.poolConfig(LeastLag)
	cfg.ConnsPerHost = 1 // force session reuse across tokens
	p, err := OpenPool(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Write(ctx, "writer", func(c *Client) error {
		_, err := c.CreateNode(ctx, nil, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if p.Token("writer") == 0 {
		t.Fatal("writer token not recorded")
	}
	// Same session, different token, no commit performed by fn.
	if err := p.Write(ctx, "reader", func(c *Client) error {
		_, err := c.AllNodes(ctx)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if lsn := p.Token("reader"); lsn != 0 {
		t.Errorf("token with no writes inherited gate LSN %d from a recycled session", lsn)
	}
}

// TestPoolDemotedHostRejoinsReads: after a failover the ex-primary's
// address must re-enter the read rotation once it reports the replica
// role again — otherwise every failover permanently shrinks the fleet.
func TestPoolDemotedHostRejoinsReads(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	cfg := f.poolConfig(RoundRobin)
	cfg.ProbeEvery = 30 * time.Millisecond
	p, err := OpenPool(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Fail over: kill the primary, promote replica 1 onto its address.
	f.psrv.Close()
	f.pdb.Crash()
	cl, err := Dial(ctx, f.r1srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Promote(ctx, f.replAddr); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"F"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// The promoted host must leave the read rotation; replica 2 is the
	// only replica left, so with the dead ex-primary gone every read
	// lands on it — and NOT on the new primary unless r2 dies.
	deadline := time.Now().Add(5 * time.Second)
	for {
		served := map[string]int{}
		for i := 0; i < 4; i++ {
			if err := p.Read(ctx, "u", func(c *Client) error {
				served[c.RemoteAddr().String()]++
				_, err := c.AllNodes(ctx)
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
		if served[f.r1srv.Addr()] == 0 && served[f.r2srv.Addr()] == 4 {
			break // promoted host out of rotation, survivor serves all
		}
		if time.Now().After(deadline) {
			t.Fatalf("read rotation never settled after failover: %v", served)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPoolCloseReleasesInFlight: a session still executing when Close
// runs must be closed on release, not parked into a dead free-list.
func TestPoolCloseReleasesInFlight(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var held *Client
	done := make(chan error, 1)
	go func() {
		done <- p.Read(ctx, "", func(c *Client) error {
			held = c
			close(started)
			time.Sleep(300 * time.Millisecond) // Close lands mid-call
			_, err := c.AllNodes(ctx)
			return err
		})
	}()
	<-started
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Logf("in-flight read during Close: %v (allowed)", err)
	}
	// The released session must have been closed, not leaked: a call on
	// its connection fails.
	if err := held.Ping(context.Background()); err == nil {
		t.Error("session released after Close still has a live connection")
	}
	if err := p.Read(ctx, "", func(c *Client) error { return nil }); err == nil {
		t.Error("read on a closed pool succeeded")
	}
}

// TestPoolAbandonedTxNotRecycled: a session released with an open
// explicit transaction must not be handed to the next borrower — their
// "auto-committed" writes would silently stage into the zombie
// transaction and never commit.
func TestPoolAbandonedTxNotRecycled(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	cfg := f.poolConfig(LeastLag)
	cfg.ConnsPerHost = 1 // force maximal session reuse
	p, err := OpenPool(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// fn opens a transaction, stages a write, and bails without closing it.
	if err := p.Write(ctx, "bad", func(c *Client) error {
		if err := c.Begin(ctx, ""); err != nil {
			return err
		}
		if _, err := c.CreateNode(ctx, []string{"Zombie"}, nil); err != nil {
			return err
		}
		return fmt.Errorf("caller bug: abandoning the transaction")
	}); err == nil {
		t.Fatal("abandoning write unexpectedly succeeded")
	}

	// The next borrower's auto-committed write must actually commit.
	if err := p.Write(ctx, "good", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"Durable"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(ctx, f.psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ids, err := cl.NodesByLabel(ctx, "Durable")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("auto-committed write after abandoned tx: %d nodes visible, want 1 (staged into a zombie transaction?)", len(ids))
	}
	if ids, _ := cl.NodesByLabel(ctx, "Zombie"); len(ids) != 0 {
		t.Fatalf("abandoned transaction's write leaked: %v", ids)
	}
}

// TestPoolWriteSurfacesErrNoPrimary: with every primary gone and nobody
// promoting, Write must back off through discovery retries and surface
// a wrapped ErrNoPrimary — not spin forever and not return a bare
// connection error that hides the real condition.
func TestPoolWriteSurfacesErrNoPrimary(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	f.psrv.Close()
	f.pdb.Crash()

	wctx, cancel := context.WithTimeout(ctx, 700*time.Millisecond)
	defer cancel()
	err = p.Write(wctx, "u", func(c *Client) error {
		_, err := c.CreateNode(wctx, nil, nil)
		return err
	})
	if err == nil {
		t.Fatal("write succeeded with no primary in the fleet")
	}
	if !errors.Is(err, ErrNoPrimary) {
		t.Fatalf("write error does not wrap ErrNoPrimary: %v", err)
	}
}

// TestPoolDiscoversPromotedPrimaryViaTopology: the pool is seeded with
// only the primary and ONE replica; the auto-promoted winner is the
// OTHER replica, which the pool can only learn about from the cluster's
// announced membership. Without topology merging, writes would never
// find the new primary.
func TestPoolDiscoversPromotedPrimaryViaTopology(t *testing.T) {
	ctx := context.Background()

	// A 3-node fleet with cluster controllers. The unseeded replica gets
	// the LOWEST node ID so the deterministic election (ties broken by
	// lowest ID) must pick exactly the node the pool has never heard of.
	pdb, err := neograph.Open(neograph.Options{
		Dir:             t.TempDir(),
		ReplicationAddr: "127.0.0.1:0",
		SyncReplicas:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pdb.Close() })
	psrv, err := server.New(pdb, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close() })
	replAddr := pdb.ReplicationAddress()

	type cnode struct {
		db   *neograph.DB
		srv  *server.Server
		repl string
	}
	openReplica := func() *cnode {
		db, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicaOf: replAddr})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		srv, err := server.New(db, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		repl := l.Addr().String()
		l.Close()
		return &cnode{db, srv, repl}
	}
	seeded, hidden := openReplica(), openReplica()
	nodes := []struct {
		id   uint64
		db   *neograph.DB
		srv  *server.Server
		repl string
	}{
		{10, pdb, psrv, replAddr},
		{3, seeded.db, seeded.srv, seeded.repl},
		{2, hidden.db, hidden.srv, hidden.repl}, // lowest ID: wins ties
	}
	for i, n := range nodes {
		var peers []string
		for j, pn := range nodes {
			if j != i {
				peers = append(peers, pn.srv.Addr())
			}
		}
		ctrl, err := cluster.New(n.db, cluster.Options{
			NodeID:          n.id,
			SelfAddr:        n.srv.Addr(),
			SelfReplAddr:    n.repl,
			Peers:           peers,
			SuspectAfter:    150 * time.Millisecond,
			ElectionTimeout: 800 * time.Millisecond,
			ProbeEvery:      40 * time.Millisecond,
			ProbeTimeout:    300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.srv.SetClusterInfo(func() any { return ctrl.NodeStatus() })
		ctrl.Start()
		t.Cleanup(ctrl.Stop)
	}

	p, err := OpenPool(ctx, PoolConfig{
		Primary:    psrv.Addr(),
		Replicas:   []string{seeded.srv.Addr()}, // the winner is NOT here
		Policy:     LeastLag,
		ProbeEvery: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"T"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Equalise the race for durable-LSN tie-break: both replicas fully
	// caught up before the kill, so the lowest node ID decides.
	target := pdb.DurableLSN()
	deadline := time.Now().Add(10 * time.Second)
	for seeded.db.AppliedLSN() < target || hidden.db.AppliedLSN() < target {
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged before the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}

	psrv.Close()
	pdb.Crash()

	// The pool's next write rides discovery with backoff across the
	// election, and must land on the node it learned only via topology.
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"T"}, nil)
		return err
	}); err != nil {
		t.Fatalf("write across auto-failover: %v", err)
	}
	if st := hidden.db.ReplStatus(); st.Role != "primary" {
		t.Fatalf("expected the unseeded lowest-ID node to win; its role is %q", st.Role)
	}
	if got := p.PrimaryAddr(); got != hidden.srv.Addr() {
		t.Fatalf("pool primary = %s, want the topology-discovered %s", got, hidden.srv.Addr())
	}
}

// TestPoolConcurrent hammers a pool from many goroutines — the race
// detector's view of the session free-lists, token map and failover
// paths (run under make race-client).
func TestPoolConcurrent(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	cfg := f.poolConfig(RoundRobin)
	cfg.ConnsPerHost = 4
	p, err := OpenPool(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			token := fmt.Sprintf("u%d", g%4)
			for i := 0; i < 10; i++ {
				if err := p.Write(ctx, token, func(c *Client) error {
					_, err := c.CreateNode(ctx, []string{"C"}, nil)
					return err
				}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := p.Read(ctx, token, func(c *Client) error {
					_, err := c.AllNodes(ctx)
					return err
				}); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
