package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"neograph"
	. "neograph/client"
	"neograph/internal/metrics"
	"neograph/internal/server"
)

// startTightServer runs an in-memory DB behind a server whose admission
// budget rejects any frame larger than ~256 bytes while small ops (ping,
// repl_status, bare creates) pass — the deterministic overload fixture.
func startTightServer(t *testing.T) *server.Server {
	t.Helper()
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(db, "127.0.0.1:0", server.Config{MaxQueuedBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	return srv
}

// bigProps is a payload whose wire frame exceeds the fixture's budget.
func bigProps() neograph.Props {
	return neograph.Props{"blob": neograph.String(strings.Repeat("x", 1024))}
}

// TestClientOverloadedRoundTrip: the server's structured overloaded code
// surfaces client-side as ErrOverloaded via errors.Is, the session
// survives the rejection, and a small request then succeeds.
func TestClientOverloadedRoundTrip(t *testing.T) {
	srv := startTightServer(t)
	ctx := context.Background()
	cl, err := Dial(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.CreateNode(ctx, nil, bigProps())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("big create: got %v, want ErrOverloaded", err)
	}
	if cl.Broken() {
		t.Fatal("session marked broken by a clean admission rejection")
	}
	if _, err := cl.CreateNode(ctx, nil, nil); err != nil {
		t.Fatalf("small create after rejection: %v", err)
	}
}

// TestPoolBacksOffOnOverload: a pool write hitting a persistently
// overloaded primary retries with backoff (counted on the pool's metrics
// registry) instead of hammering, surfaces ErrOverloaded once the
// retries are spent, and recovers immediately when load fits the budget.
func TestPoolBacksOffOnOverload(t *testing.T) {
	srv := startTightServer(t)
	ctx := context.Background()
	reg := metrics.NewRegistry()
	p, err := OpenPool(ctx, PoolConfig{Primary: srv.Addr(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	err = p.Write(ctx, "tok", func(c *Client) error {
		_, err := c.CreateNode(ctx, nil, bigProps())
		return err
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("pool write: got %v, want ErrOverloaded after bounded retries", err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "neograph_pool_overload_backoffs_total 6") {
		t.Errorf("expected 6 counted backoffs, scrape:\n%s", b.String())
	}

	// Recovery: a write that fits the budget goes straight through.
	if err := p.Write(ctx, "tok", func(c *Client) error {
		_, err := c.CreateNode(ctx, nil, nil)
		return err
	}); err != nil {
		t.Fatalf("small pool write after overload: %v", err)
	}
}
