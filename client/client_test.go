// Package client_test lives outside the client package: internal/server
// (started in-process by these tests) itself imports neograph/client for
// its deprecated shim, so an internal test package would be a cycle.
package client_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"neograph"
	. "neograph/client"
	"neograph/internal/server"
)

// startServer spins up a persistent DB (real WAL, so commit LSN tokens
// and durability gates behave like production) + server and returns a
// connected client.
func startServer(t *testing.T) (*neograph.DB, *server.Server, *Client) {
	t.Helper()
	db, err := neograph.Open(neograph.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })
	cl, err := Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return db, srv, cl
}

func TestPingReportsProto(t *testing.T) {
	_, _, cl := startServer(t)
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cl.ServerProto() < 2 {
		t.Fatalf("server proto = %d, want >= 2", cl.ServerProto())
	}
}

// frameCountingConn counts newline-delimited frames crossing the wire in
// each direction — the round-trip meter for the batching claim.
type frameCountingConn struct {
	net.Conn
	framesOut, framesIn atomic.Int64
}

func (c *frameCountingConn) Write(p []byte) (int, error) {
	c.framesOut.Add(int64(bytes.Count(p, []byte{'\n'})))
	return c.Conn.Write(p)
}

func (c *frameCountingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.framesIn.Add(int64(bytes.Count(p[:n], []byte{'\n'})))
	return n, err
}

// TestBatchOneRoundTrip is the acceptance check: a batch of N >= 8 mixed
// ops crosses the connection as exactly ONE request frame and ONE
// response frame.
func TestBatchOneRoundTrip(t *testing.T) {
	_, srv, _ := startServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cc := &frameCountingConn{Conn: raw}
	cl := NewConn(cc)
	defer cl.Close()

	ctx := context.Background()
	// Pre-make the two nodes the mixed batch will reference.
	pre := &Batch{}
	a := pre.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("ada")})
	bb := pre.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("bob")})
	preRes, err := cl.RunBatch(ctx, pre)
	if err != nil {
		t.Fatal(err)
	}
	ida, _ := preRes.ID(a)
	idb, _ := preRes.ID(bb)

	cc.framesOut.Store(0)
	cc.framesIn.Store(0)
	mixed := &Batch{}
	mixed.SetNodeProp(ida, "age", neograph.Int(36))
	mixed.AddLabel(ida, "Admin")
	rel := mixed.CreateRel("KNOWS", ida, idb, neograph.Props{"since": neograph.Int(2016)})
	mixed.GetNode(ida)
	mixed.GetNode(idb)
	mixed.Neighbors(ida, "out")
	mixed.NodesByLabel("Person")
	mixed.Relationships(ida, "both")
	mixed.SetNodeProp(idb, "age", neograph.Int(41))
	mixed.AllNodes()
	if mixed.Len() < 8 {
		t.Fatalf("want >= 8 mixed ops, have %d", mixed.Len())
	}
	res, err := cl.RunBatch(ctx, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.framesOut.Load(); got != 1 {
		t.Errorf("batch of %d ops used %d request frames, want 1", mixed.Len(), got)
	}
	if got := cc.framesIn.Load(); got != 1 {
		t.Errorf("batch of %d ops used %d response frames, want 1", mixed.Len(), got)
	}
	if res.Len() != mixed.Len() {
		t.Fatalf("results = %d, want %d", res.Len(), mixed.Len())
	}
	relID, err := res.ID(rel)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := cl.GetRel(ctx, relID); err != nil || r.Type != "KNOWS" {
		t.Errorf("CreateRel in batch: rel %d = %+v, %v", relID, r, err)
	}
	node, err := res.Node(3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := node.Props["age"].AsInt(); v != 36 {
		t.Errorf("batch snapshot age = %v (ops in one batch see earlier ops)", node.Props["age"])
	}
	if res.LSN() == 0 {
		t.Error("committed batch returned no LSN token")
	}
	ids, _ := res.IDs(6)
	if len(ids) != 2 {
		t.Errorf("NodesByLabel inside batch = %v", ids)
	}
}

func TestBatchMidFailureAbortsAtomically(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()

	pre := &Batch{}
	pre.CreateNode([]string{"Seed"}, nil)
	preRes, err := cl.RunBatch(ctx, pre)
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := preRes.ID(0)

	b := &Batch{}
	b.SetNodeProp(seed, "a", neograph.Int(1))
	b.CreateNode([]string{"Orphan"}, nil)
	b.GetNode(999999) // fails: not found
	b.SetNodeProp(seed, "b", neograph.Int(2))
	_, err = cl.RunBatch(ctx, b)
	if err == nil {
		t.Fatal("mid-batch failure did not error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %v is not a BatchError", err)
	}
	if be.Index != 2 {
		t.Errorf("failed op index = %d, want 2", be.Index)
	}
	if !errors.Is(err, neograph.ErrNotFound) {
		t.Errorf("sentinel lost across batch abort: %v", err)
	}

	// Atomicity: nothing from the batch is visible.
	n, err := cl.GetNode(ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Props["a"]; ok {
		t.Error("aborted batch's first write is visible")
	}
	ids, _ := cl.NodesByLabel(ctx, "Orphan")
	if len(ids) != 0 {
		t.Errorf("aborted batch's created node visible: %v", ids)
	}
}

func TestBatchInsideExplicitTxAbortsWholeTx(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()
	if err := cl.Begin(ctx, ""); err != nil {
		t.Fatal(err)
	}
	id, err := cl.CreateNode(ctx, []string{"InTx"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &Batch{}
	b.SetNodeProp(id, "x", neograph.Int(1))
	b.GetNode(424242) // fails
	if _, err := cl.RunBatch(ctx, b); err == nil {
		t.Fatal("batch failure inside explicit tx did not error")
	}
	// The explicit transaction is gone (atomic abort): commit now fails.
	if err := cl.Commit(ctx); err == nil {
		t.Fatal("commit succeeded after batch aborted the transaction")
	}
	if _, err := cl.GetNode(ctx, id); !errors.Is(err, neograph.ErrNotFound) {
		t.Fatalf("pre-batch write of aborted tx still visible: %v", err)
	}
}

func TestBatchInsideExplicitTxStagesUntilCommit(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()
	if err := cl.Begin(ctx, ""); err != nil {
		t.Fatal(err)
	}
	b := &Batch{}
	i := b.CreateNode([]string{"Staged"}, nil)
	res, err := cl.RunBatch(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.LSN() != 0 {
		t.Error("batch inside open tx returned a commit LSN before commit")
	}
	id, _ := res.ID(i)
	// Not yet visible to another session.
	other, err := Dial(ctx, cl.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.GetNode(ctx, id); !errors.Is(err, neograph.ErrNotFound) {
		t.Fatalf("staged batch visible before commit: %v", err)
	}
	if err := cl.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.LastCommitLSN() == 0 {
		t.Error("commit returned no LSN")
	}
	if _, err := other.GetNode(ctx, id); err != nil {
		t.Fatalf("committed batch invisible: %v", err)
	}
}

func TestBatchValidation(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()
	if _, err := cl.RunBatch(ctx, &Batch{}); err == nil {
		t.Error("empty batch accepted")
	}
	b := &Batch{}
	b.SetNodeProp(1, "k", neograph.Value{}) // null value is fine to encode
	b.GetNode(1)
	// Client-side validation rejects oversized batches without a round trip.
	big := &Batch{}
	for i := 0; i < 5000; i++ {
		big.GetNode(1)
	}
	if _, err := cl.RunBatch(ctx, big); err == nil {
		t.Error("oversized batch accepted")
	}
}

// TestCancelAfterCallDoesNotPoisonNextCall is the regression test for a
// scheduling race: every CLI/pool call runs under its own context that
// is cancelled as soon as the call returns. The roundTrip cancellation
// watcher must not observe that routine cancellation late and expire the
// connection deadline in the middle of the NEXT call (symptom: instant
// spurious "i/o timeout", a broken session, and — through the pool's
// failover retry — duplicated writes).
func TestCancelAfterCallDoesNotPoisonNextCall(t *testing.T) {
	_, _, cl := startServer(t)
	for i := 0; i < 500; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cl.Ping(ctx)
		cancel() // immediately, like a per-command defer cancel()
		if err != nil {
			t.Fatalf("call %d failed after a routine post-call cancel: %v", i, err)
		}
		if cl.Broken() {
			t.Fatalf("session broken after %d routinely-cancelled calls", i)
		}
	}
}

// startLaggingReplica returns a client to a replica that can never catch
// up to the returned gate position (its primary is already gone), so a
// gated read blocks server-side until a deadline fires.
func startLaggingReplica(t *testing.T) (cl *Client, gate uint64) {
	t.Helper()
	ctx := context.Background()
	primary, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Update(0, func(tx *neograph.Tx) error {
		_, err := tx.CreateNode([]string{"Seed"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	replica, err := neograph.Open(neograph.Options{Dir: t.TempDir(), ReplicaOf: primary.ReplicationAddress()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	if err := replica.WaitApplied(primary.DurableLSN(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	gate = primary.DurableLSN() + 1 // one byte past anything shipped, ever
	primary.Close()                 // the stream is dead; the gate stays unreachable

	rsrv, err := server.New(replica, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The deliberately-stuck gated handler should not hold test cleanup
	// for the full default drain grace.
	rsrv.DrainGrace = 300 * time.Millisecond
	t.Cleanup(func() { rsrv.Close() })
	cl, err = Dial(ctx, rsrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, gate
}

func TestContextDeadlinePropagates(t *testing.T) {
	cl, gate := startLaggingReplica(t)
	// Gate a read past anything the replica will ever apply: the server
	// blocks in WaitLSN until the request's wire deadline_ms expires
	// (well before the 10s server-side WaitLSN cap).
	cl.ReadAfter(gate)
	short, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := cl.AllNodes(short)
	if err == nil {
		t.Fatal("gated read beyond horizon succeeded")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("deadline not propagated: read took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v, want context.DeadlineExceeded", err)
	}
	// The server answered with a clean deadline-error frame (the conn
	// deadline carries a grace past the context deadline), so the
	// session survives the timeout.
	if cl.Broken() {
		t.Error("session broken by a server-answered deadline expiry")
	}
	cl.ReadAfter(0)
	if _, err := cl.AllNodes(context.Background()); err != nil {
		t.Errorf("session unusable after deadline expiry: %v", err)
	}
}

func TestContextCancelBreaksCall(t *testing.T) {
	cl, gate := startLaggingReplica(t)
	cl.ReadAfter(gate)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := cl.AllNodes(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	// Mid-call cancellation leaves framing unknown: the session is broken.
	if !cl.Broken() {
		t.Error("client not marked broken after mid-call cancel")
	}
	if _, err := cl.AllNodes(context.Background()); !errors.Is(err, ErrBroken) {
		t.Errorf("broken client accepted a call: %v", err)
	}
}
