package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"neograph"
	. "neograph/client"
	"neograph/internal/server"
	"neograph/internal/trace"
)

// traceLine is the JSONL shape /debug/traces emits, as a test consumer
// sees it.
type traceLine struct {
	TraceID string `json:"trace_id"`
	Spans   []struct {
		Name   string `json:"name"`
		Parent string `json:"parent"`
	} `json:"spans"`
}

// fetchTraces scrapes a /debug/traces endpoint.
func fetchTraces(t *testing.T, url string) []traceLine {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []traceLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var tl traceLine
		if err := dec.Decode(&tl); err != nil {
			t.Fatal(err)
		}
		out = append(out, tl)
	}
	return out
}

// spanNames flattens a tracer's ring into trace ID -> set of span names.
func spanNames(tr *trace.Tracer) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, rec := range tr.Traces() {
		names := out[rec.TraceID]
		if names == nil {
			names = map[string]bool{}
			out[rec.TraceID] = names
		}
		for _, sp := range rec.Spans {
			names[sp.Name] = true
		}
	}
	return out
}

// TestTraceBatchPropagation: a traced client.Batch call carries ONE
// trace ID across the wire — the client mints the root, the server
// records its server.batch span under the same ID, and the trace is
// retrievable from the server's /debug/traces JSONL endpoint.
func TestTraceBatchPropagation(t *testing.T) {
	srvTracer := trace.New(0, 0) // server samples nothing on its own
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithConfig(db, "127.0.0.1:0", server.Config{Tracer: srvTracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); db.Close() })

	ctx := context.Background()
	cl, err := Dial(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clTracer := trace.New(1, 0)
	cl.SetTracer(clTracer)

	b := &Batch{}
	b.CreateNode([]string{"Traced"}, nil)
	b.NodesByLabel("Traced")
	if _, err := cl.RunBatch(ctx, b); err != nil {
		t.Fatal(err)
	}

	// The client minted exactly one root for the one call.
	var tid string
	for id, names := range spanNames(clTracer) {
		if names["client.batch"] {
			if tid != "" {
				t.Fatalf("batch produced two traces: %s and %s", tid, id)
			}
			tid = id
		}
	}
	if tid == "" {
		t.Fatal("client recorded no client.batch root")
	}

	// The server recorded the same trace ID, visible over /debug/traces.
	ts := httptest.NewServer(trace.Handler(srvTracer))
	defer ts.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		lines := fetchTraces(t, ts.URL+"/debug/traces?trace_id="+tid)
		found := false
		for _, l := range lines {
			for _, sp := range l.Spans {
				if sp.Name == "server.batch" {
					found = true
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server /debug/traces never showed server.batch under %s: %+v", tid, lines)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolOverloadRetrySingleTrace: a pool write that is rejected with
// ErrOverloaded and retried lands every attempt under ONE pool.write
// root — the backoff loop does not fragment the operation across trace
// IDs.
func TestPoolOverloadRetrySingleTrace(t *testing.T) {
	srv := startTightServer(t)
	ctx := context.Background()
	tracer := trace.New(1, 0)
	p, err := OpenPool(ctx, PoolConfig{Primary: srv.Addr(), Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	err = p.Write(ctx, "tok", func(c *Client) error {
		_, err := c.CreateNode(ctx, nil, bigProps())
		return err
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("pool write: got %v, want ErrOverloaded", err)
	}

	var roots, attempts int
	for _, rec := range tracer.Traces() {
		inTrace := 0
		for _, sp := range rec.Spans {
			switch sp.Name {
			case "pool.write":
				roots++
			case "client.create_node":
				inTrace++
			}
		}
		if inTrace > attempts {
			attempts = inTrace
		}
	}
	if roots != 1 {
		t.Fatalf("overloaded write produced %d pool.write roots, want 1", roots)
	}
	if attempts < 2 {
		t.Fatalf("single trace holds %d create_node attempts, want >= 2 (retries must share the root)", attempts)
	}
}

// TestPoolFailoverSingleTrace: a pool write that spans the primary dying
// and a replica being promoted still resolves to ONE trace — the
// re-discovery retries ride the same pool.write root.
func TestPoolFailoverSingleTrace(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	tracer := trace.New(1, 0)
	cfg := f.poolConfig(LeastLag)
	cfg.Tracer = tracer
	p, err := OpenPool(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"Acked"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Primary dies hard; the operator promotes the freshest replica onto
	// the old shipping address.
	f.psrv.Close()
	f.pdb.Crash()
	promoteSrv := f.r1srv
	if f.r2db.AppliedLSN() > f.r1db.AppliedLSN() {
		promoteSrv = f.r2srv
	}
	cl, err := Dial(ctx, promoteSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Promote(ctx, f.replAddr); err != nil {
		t.Fatalf("promote: %v", err)
	}

	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"Acked"}, nil)
		return err
	}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}

	// Two p.Write calls -> exactly two pool.write roots; the failover
	// write's dead-primary attempts and its eventual success on the
	// promoted node share one trace ID.
	var roots int
	for _, names := range spanNames(tracer) {
		if names["pool.write"] {
			roots++
		}
	}
	if roots != 2 {
		t.Fatalf("two routed writes produced %d pool.write traces, want exactly 2 (failover retries must not mint new roots)", roots)
	}
}

// TestClusterTraceEndToEnd is the PR's acceptance walk: on a 1-primary/
// 1-replica cluster sharing one tracer in-process, a traced commit
// yields ONE trace ID whose span tree covers the client call, the server
// op, per-stripe validation, the WAL fsync batch, the quorum wait, and
// the replica's apply — and the whole tree is retrievable from
// /debug/traces.
func TestClusterTraceEndToEnd(t *testing.T) {
	tracer := trace.New(1, 256)
	// First-committer-wins, whose per-stripe latch footprint is what the
	// validate.stripe spans record.
	pdb, err := neograph.Open(neograph.Options{
		Dir:             t.TempDir(),
		ReplicationAddr: "127.0.0.1:0",
		SyncReplicas:    1,
		Conflict:        neograph.FirstCommitterWins,
		Tracer:          tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pdb.Close() })
	psrv, err := server.NewWithConfig(pdb, "127.0.0.1:0", server.Config{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { psrv.Close() })
	rdb, err := neograph.Open(neograph.Options{
		Dir:       t.TempDir(),
		ReplicaOf: pdb.ReplicationAddress(),
		Tracer:    tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdb.Close() })

	// Commit only once the replica is attached, so the quorum wait is a
	// real wait and the apply is traceable.
	deadline := time.Now().Add(5 * time.Second)
	for len(pdb.ReplStatus().Replicas) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx := context.Background()
	cl, err := Dial(ctx, psrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTracer(tracer)

	id, err := cl.CreateNode(ctx, []string{"Person"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Begin(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetNodeProp(ctx, id, "traced", neograph.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"client.commit",    // SDK call
		"server.commit",    // server op
		"commit.validate",  // engine validation phase
		"validate.stripe",  // per-stripe validation
		"wal.append",       // log write
		"commit.install",   // version install
		"wal.fsync_batch",  // group-commit fsync
		"repl.quorum_wait", // sync-replica ack wait
		"replica.apply",    // the other node, via the shipped trace record
	}
	// replica.apply arrives asynchronously over the shipper stream.
	var tid string
	var missing []string
	deadline = time.Now().Add(5 * time.Second)
	for {
		tid, missing = "", nil
		for id, names := range spanNames(tracer) {
			if !names["client.commit"] {
				continue
			}
			tid = id
			for _, w := range want {
				if !names[w] {
					missing = append(missing, w)
				}
			}
			break
		}
		if tid != "" && len(missing) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit trace %q incomplete, missing %v", tid, missing)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The full tree is one /debug/traces line under one trace ID.
	ts := httptest.NewServer(trace.Handler(tracer))
	defer ts.Close()
	lines := fetchTraces(t, fmt.Sprintf("%s/debug/traces?trace_id=%s", ts.URL, tid))
	if len(lines) != 1 {
		t.Fatalf("trace_id filter returned %d lines, want 1", len(lines))
	}
	got := map[string]bool{}
	for _, sp := range lines[0].Spans {
		got[sp.Name] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("/debug/traces line missing span %q", w)
		}
	}
}
