// Package client is the public SDK for a neograph server fleet. It
// redesigns the remote surface around the paper's core argument — graph
// workloads die by round trips, so whole operations must be submitted to
// the engine, not dribbled over the network:
//
//   - every call takes a context.Context; deadlines propagate to the
//     server as a wire-level per-request time budget (deadline_ms) and
//     cancellation tears the call down locally,
//   - a Batch submits many operations in ONE round trip, executed
//     server-side inside a single transaction (atomic: any failed op
//     aborts the batch),
//   - a Pool dials the primary plus any number of replicas, routes reads
//     to replicas (least-lag or round-robin) and writes to the primary,
//     carries read-your-writes tokens automatically, and re-discovers
//     the primary after a failover promotion.
//
// A Client is one server session (at most one open explicit transaction)
// and is not safe for concurrent use — open one per worker, or let a
// Pool manage a fleet of them.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"neograph"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// ErrBroken reports a client whose connection state is unknown — a call
// was torn down mid-frame (context cancellation or transport error), so
// request/response framing can no longer be trusted. Dial a fresh client.
var ErrBroken = errors.New("client: connection broken")

// ErrUnavailable reports a server-answered "cannot serve this right
// now" — the server is draining, or a gated wait timed out. Another
// replica (or a retry) may well serve the same request; the Pool treats
// it as a routing signal, not a final answer.
var ErrUnavailable = errors.New("client: server unavailable")

// ErrOverloaded reports a server-answered admission rejection: the
// server's in-flight or queued-bytes budget is exhausted. The request
// had no effect and the session survives — back off and retry (the Pool
// does both automatically).
var ErrOverloaded = errors.New("client: server overloaded")

// deadlineGrace is how long past a context deadline the connection stays
// readable, giving the server's clean deadline-error frame (flushed
// right at the budget) time to arrive so the session survives a timeout.
const deadlineGrace = 500 * time.Millisecond

// Client is a typed session with one neograph server.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	// lastLSN is the commit position of the newest write acknowledged on
	// this client — the token for read-your-writes against a replica.
	lastLSN uint64
	// readAfter, when set, is attached to every request as WaitLSN.
	readAfter uint64
	// proto is the server's protocol generation, learned from Ping.
	proto  int
	broken bool
	// txOpen tracks whether this session holds an open explicit
	// transaction server-side. Conservative: a server-side batch abort
	// also clears it. Pools refuse to recycle a session mid-transaction
	// — the next borrower's "auto-committed" writes would silently stage
	// into the leftover transaction and never commit.
	txOpen bool
	// tracer, when set, head-samples a root span for every call whose
	// context does not already carry one (a Pool's spans do); sampled
	// calls ship their trace context in the request's trace field.
	tracer *trace.Tracer
	// seq numbers the requests of this session; the server echoes it in
	// every response frame, catching request/response mispairing.
	seq uint64
	// span, when set, is the parent every call on this session records
	// under. The Pool installs it for the duration of a borrow so a
	// routed operation's retries and failover land in one trace even
	// though fn closes over the caller's own context.
	span *trace.Span
}

// Dial connects to a server. The context bounds the dial only; calls
// carry their own contexts.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial: %w", err)
	}
	return NewConn(conn), nil
}

// NewConn wraps an established connection (custom transports, tests).
func NewConn(conn net.Conn) *Client {
	return &Client{conn: conn, dec: json.NewDecoder(conn), enc: json.NewEncoder(conn)}
}

// Close closes the connection (aborting any open transaction server-side).
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether the session died mid-call and must be redialed.
func (c *Client) Broken() bool { return c.broken }

// RemoteAddr returns the server's address.
func (c *Client) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// ServerProto returns the server's wire protocol generation (learned
// from the first Ping; zero before that, or for a pre-versioning server).
func (c *Client) ServerProto() int { return c.proto }

// LastCommitLSN returns the commit position of the newest write this
// client has had acknowledged (explicit commit or auto-committed write).
// Hand it to another client's ReadAfter to read your writes from a
// replica.
func (c *Client) LastCommitLSN() uint64 { return c.lastLSN }

// ReadAfter gates every subsequent request on the server having reached
// pos: a replica waits until it has applied the primary's log that far
// (read-your-writes), a primary until the position is durable. Zero
// clears the gate.
func (c *Client) ReadAfter(pos uint64) { c.readAfter = pos }

// SetTracer enables client-side tracing: calls are head-sampled at the
// tracer's rate, and a sampled call's trace context travels with the
// request so the server (and through it the engine, WAL and replicas)
// records spans under the same trace ID. Calls whose context already
// carries a span (see trace.ContextWith) join that trace instead of
// starting one.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// roundTrip sends req and reads the response under ctx: a context
// deadline becomes the request's wire deadline_ms budget and the
// connection I/O deadline; cancellation poisons the connection (the
// client is Broken afterwards — framing is unrecoverable mid-call).
// The response is returned even on a server-reported error so callers
// can inspect error details (batch failure indexes).
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if c.broken {
		return nil, ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if req.WaitLSN == 0 {
		req.WaitLSN = c.readAfter
	}
	c.seq++
	req.Seq = c.seq
	// Tracing: join the span carried by ctx, else the session's
	// pool-installed one, else head-sample a new root. A nil span is
	// free and ships no context.
	sp := trace.SpanFrom(ctx)
	if sp == nil {
		sp = c.span
	}
	if sp != nil {
		sp = sp.Child("client." + req.Op)
	} else {
		sp = c.tracer.StartRoot("client." + req.Op)
	}
	if sp != nil {
		sc := sp.Context()
		req.Trace = &wire.TraceContext{TraceID: sc.TraceID, SpanID: sc.SpanID}
		defer sp.Finish()
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, fmt.Errorf("client: %w", context.DeadlineExceeded)
		}
		ms := rem.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMS = ms
		// The I/O deadline gets a grace past the context deadline: the
		// server fails the request AT the budget and flushes a clean
		// deadline-error frame moments later — receiving it keeps the
		// session usable (and still surfaces context.DeadlineExceeded),
		// where expiring the conn at exactly dl would break the session
		// on every timeout.
		c.conn.SetDeadline(dl.Add(deadlineGrace))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	// Cancellation support: expire the I/O deadline when the context is
	// cancelled, failing the blocked read/write immediately. A deadline
	// expiry also fires Done, but the conn deadline already covers it
	// (with grace, so the server's clean error frame can still land).
	// The callback is JOINED before returning — left running past its
	// call, it could observe the (by then routinely cancelled) context
	// late and poison the connection mid-way through the NEXT call.
	if ctx.Done() != nil {
		ran := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			defer close(ran)
			if errors.Is(ctx.Err(), context.Canceled) {
				c.conn.SetDeadline(time.Unix(1, 0))
			}
		})
		defer func() {
			if !stop() {
				<-ran
			}
		}()
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = true
		sp.Set("error", "send failed")
		return nil, c.callErr(ctx, "send", err)
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		c.broken = true
		sp.Set("error", "recv failed")
		return nil, c.callErr(ctx, "recv", err)
	}
	// The server echoes the request's seq (wire v2); a mismatch means the
	// session's framing slipped — treat it like any mid-frame tear.
	if resp.Seq != 0 && resp.Seq != req.Seq {
		c.broken = true
		return nil, fmt.Errorf("client: response seq %d for request seq %d: %w", resp.Seq, req.Seq, ErrBroken)
	}
	if !resp.OK {
		return &resp, remoteError(resp.Code, resp.Error)
	}
	if resp.LSN != 0 {
		c.lastLSN = resp.LSN
	}
	return &resp, nil
}

// callErr attributes a transport failure to the context when the context
// ended — the deadline/cancel is the cause, the I/O error the symptom.
func (c *Client) callErr(ctx context.Context, stage string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("client: %s: %w", stage, cerr)
	}
	// The connection deadline can fire a beat before the context's own
	// timer goroutine marks it done; attribute by clock, not by that
	// timer race.
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return fmt.Errorf("client: %s: %w", stage, context.DeadlineExceeded)
	}
	return fmt.Errorf("client: %s: %w", stage, err)
}

// remoteError maps well-known engine errors back to their sentinel values
// so errors.Is works across the wire. The structured code field (wire
// v2) classifies availability/deadline failures mechanically; the text
// fallbacks keep older servers working.
func remoteError(code, msg string) error {
	switch code {
	case wire.CodeDeadline:
		return fmt.Errorf("%w (remote: %s)", context.DeadlineExceeded, msg)
	case wire.CodeUnavailable:
		return fmt.Errorf("%w (remote: %s)", ErrUnavailable, msg)
	case wire.CodeOverloaded:
		return fmt.Errorf("%w (remote: %s)", ErrOverloaded, msg)
	}
	for _, sentinel := range []error{
		neograph.ErrNotFound, neograph.ErrWriteConflict, neograph.ErrDeadlock,
		neograph.ErrTxDone, neograph.ErrHasRels, neograph.ErrReadOnlyReplica,
	} {
		if strings.Contains(msg, sentinel.Error()) {
			return fmt.Errorf("%w (remote: %s)", sentinel, msg)
		}
	}
	if strings.Contains(msg, "deadline exceeded") {
		return fmt.Errorf("%w (remote: %s)", context.DeadlineExceeded, msg)
	}
	if strings.Contains(msg, "shutting down") || strings.Contains(msg, "apply wait timed out") {
		return fmt.Errorf("%w (remote: %s)", ErrUnavailable, msg)
	}
	return errors.New(msg)
}

// decodeNode converts a wire node snapshot.
func decodeNode(n *wire.NodeJSON) (neograph.Node, error) {
	if n == nil {
		return neograph.Node{}, errors.New("client: response missing node")
	}
	props, err := wire.DecodeProps(n.Props)
	if err != nil {
		return neograph.Node{}, err
	}
	return neograph.Node{ID: n.ID, Labels: n.Labels, Props: props}, nil
}

// decodeRel converts a wire relationship snapshot.
func decodeRel(r *wire.RelJSON) (neograph.Relationship, error) {
	if r == nil {
		return neograph.Relationship{}, errors.New("client: response missing rel")
	}
	props, err := wire.DecodeProps(r.Props)
	if err != nil {
		return neograph.Relationship{}, err
	}
	return neograph.Relationship{
		ID: r.ID, Type: r.Type, Start: r.Start, End: r.End, Props: props,
	}, nil
}

// decodeRels converts a wire relationship list.
func decodeRels(rs []wire.RelJSON) ([]neograph.Relationship, error) {
	out := make([]neograph.Relationship, 0, len(rs))
	for i := range rs {
		rel, err := decodeRel(&rs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, rel)
	}
	return out, nil
}

// Ping checks liveness and learns the server's protocol generation.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpPing})
	if err != nil {
		return err
	}
	c.proto = resp.Proto
	return nil
}

// InTx reports whether the session holds an open explicit transaction.
func (c *Client) InTx() bool { return c.txOpen }

// SetTxClosed records that the server finished the transaction without a
// client-side Commit/Abort (a failed batch aborts an enclosing one).
func (c *Client) SetTxClosed() { c.txOpen = false }

// Begin opens an explicit transaction ("si" or "rc"; empty = si).
func (c *Client) Begin(ctx context.Context, isolation string) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpBegin, Isolation: isolation})
	if err == nil {
		c.txOpen = true
	}
	return err
}

// Commit commits the open transaction. Win or lose, the transaction is
// finished afterwards (a failed commit is already aborted server-side).
func (c *Client) Commit(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpCommit})
	c.txOpen = false
	return err
}

// Abort aborts the open transaction.
func (c *Client) Abort(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpAbort})
	c.txOpen = false
	return err
}

// CreateNode creates a node and returns its ID.
func (c *Client) CreateNode(ctx context.Context, labels []string, props neograph.Props) (neograph.NodeID, error) {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpCreateNode, Labels: labels, Props: enc})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// GetNode fetches a node snapshot.
func (c *Client) GetNode(ctx context.Context, id neograph.NodeID) (neograph.Node, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpGetNode, ID: id})
	if err != nil {
		return neograph.Node{}, err
	}
	return decodeNode(resp.Node)
}

// SetNodeProp sets one node property.
func (c *Client) SetNodeProp(ctx context.Context, id neograph.NodeID, key string, v neograph.Value) error {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(ctx, &wire.Request{Op: wire.OpSetNodeProp, ID: id, Key: key, Value: enc})
	return err
}

// AddLabel adds a label to a node.
func (c *Client) AddLabel(ctx context.Context, id neograph.NodeID, label string) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpAddLabel, ID: id, Label: label})
	return err
}

// RemoveLabel removes a label from a node.
func (c *Client) RemoveLabel(ctx context.Context, id neograph.NodeID, label string) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpRemoveLabel, ID: id, Label: label})
	return err
}

// DeleteNode deletes a relationship-free node.
func (c *Client) DeleteNode(ctx context.Context, id neograph.NodeID) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpDeleteNode, ID: id})
	return err
}

// DetachDeleteNode deletes a node and its relationships.
func (c *Client) DetachDeleteNode(ctx context.Context, id neograph.NodeID) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpDetachDelete, ID: id})
	return err
}

// CreateRel creates a relationship and returns its ID.
func (c *Client) CreateRel(ctx context.Context, relType string, start, end neograph.NodeID, props neograph.Props) (neograph.RelID, error) {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpCreateRel, Type: relType, Start: start, End: end, Props: enc})
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// GetRel fetches a relationship snapshot.
func (c *Client) GetRel(ctx context.Context, id neograph.RelID) (neograph.Relationship, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpGetRel, ID: id})
	if err != nil {
		return neograph.Relationship{}, err
	}
	return decodeRel(resp.Rel)
}

// SetRelProp sets one relationship property.
func (c *Client) SetRelProp(ctx context.Context, id neograph.RelID, key string, v neograph.Value) error {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return err
	}
	_, err = c.roundTrip(ctx, &wire.Request{Op: wire.OpSetRelProp, ID: id, Key: key, Value: enc})
	return err
}

// DeleteRel deletes a relationship.
func (c *Client) DeleteRel(ctx context.Context, id neograph.RelID) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpDeleteRel, ID: id})
	return err
}

// Relationships lists a node's relationships ("out", "in", "both").
func (c *Client) Relationships(ctx context.Context, id neograph.NodeID, dir string, types ...string) ([]neograph.Relationship, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpRels, ID: id, Dir: dir, Types: types})
	if err != nil {
		return nil, err
	}
	return decodeRels(resp.Rels)
}

// Neighbors lists adjacent node IDs.
func (c *Client) Neighbors(ctx context.Context, id neograph.NodeID, dir string, types ...string) ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpNeighbors, ID: id, Dir: dir, Types: types})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// NodesByLabel lists node IDs carrying a label.
func (c *Client) NodesByLabel(ctx context.Context, label string) ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpNodesByLabel, Label: label})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// NodesByProperty lists node IDs whose property key equals v.
func (c *Client) NodesByProperty(ctx context.Context, key string, v neograph.Value) ([]neograph.NodeID, error) {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpNodesByProp, Key: key, Value: enc})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// AllNodes lists every visible node ID.
func (c *Client) AllNodes(ctx context.Context) ([]neograph.NodeID, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpAllNodes})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Stats returns the server's engine counters as raw JSON.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// GC triggers a garbage collection cycle, returning the report as JSON.
func (c *Client) GC(ctx context.Context) (json.RawMessage, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpGC})
	if err != nil {
		return nil, err
	}
	return resp.Info, nil
}

// Checkpoint triggers a checkpoint.
func (c *Client) Checkpoint(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpCheckpoint})
	return err
}

// ReplStatus returns the server's replication role and progress — the
// topology probe the Pool routes by.
func (c *Client) ReplStatus(ctx context.Context) (neograph.ReplStatus, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpReplStatus})
	if err != nil {
		return neograph.ReplStatus{}, err
	}
	var st neograph.ReplStatus
	if err := json.Unmarshal(resp.Info, &st); err != nil {
		return neograph.ReplStatus{}, fmt.Errorf("client: repl status: %w", err)
	}
	return st, nil
}

// ClusterStatus returns the node's cluster self-view: role, epoch, log
// positions, and the membership its controller announces. Servers
// without a cluster controller fail the op — callers fall back to
// ReplStatus.
func (c *Client) ClusterStatus(ctx context.Context) (wire.ClusterInfo, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpClusterStatus})
	if err != nil {
		return wire.ClusterInfo{}, err
	}
	var ci wire.ClusterInfo
	if err := json.Unmarshal(resp.Info, &ci); err != nil {
		return wire.ClusterInfo{}, fmt.Errorf("client: cluster status: %w", err)
	}
	return ci, nil
}

// Promote asks a replica server to promote itself to a writable primary
// (failover), optionally starting a WAL shipper on addr so surviving
// replicas can re-point. Returns the post-promotion replication status.
func (c *Client) Promote(ctx context.Context, addr string) (neograph.ReplStatus, error) {
	resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpPromote, Addr: addr})
	if err != nil {
		return neograph.ReplStatus{}, err
	}
	var st neograph.ReplStatus
	if err := json.Unmarshal(resp.Info, &st); err != nil {
		return neograph.ReplStatus{}, fmt.Errorf("client: promote status: %w", err)
	}
	return st, nil
}
