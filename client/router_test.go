package client_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"neograph"
	"neograph/internal/partition"
	"neograph/internal/server"
	"neograph/internal/wire"

	. "neograph/client"
)

// partFleet is an in-process partitioned fleet: one primary per
// partition, coordinators wired, served over real TCP.
type partFleet struct {
	dbs    []*neograph.DB
	srvs   []*server.Server
	coords []*partition.Coordinator
	pm     wire.PartitionMap
}

func startPartitions(t *testing.T, count int) *partFleet {
	t.Helper()
	f := &partFleet{pm: wire.PartitionMap{Version: 1, Count: count}}
	for part := 0; part < count; part++ {
		db, err := neograph.Open(neograph.Options{
			Dir:            t.TempDir(),
			PartitionID:    part,
			PartitionCount: count,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(db, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.dbs = append(f.dbs, db)
		f.srvs = append(f.srvs, srv)
		f.pm.Groups = append(f.pm.Groups, wire.PartitionGroup{
			ID: uint32(part), Addrs: []string{srv.Addr()},
		})
	}
	for part := 0; part < count; part++ {
		topo := partition.NewTopology(f.pm)
		coord := partition.NewCoordinator(uint32(part), topo, f.srvs[part].Local(),
			f.dbs[part].AppliedLSN(), nil)
		f.srvs[part].SetPartition(coord, uint32(part), count)
		coord.Start()
		f.coords = append(f.coords, coord)
	}
	t.Cleanup(func() {
		for _, c := range f.coords {
			c.Close()
		}
		for _, s := range f.srvs {
			s.Close()
		}
		for _, db := range f.dbs {
			db.Close()
		}
	})
	return f
}

func openRouter(t *testing.T, f *partFleet) *Router {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r, err := OpenRouter(ctx, RouterConfig{
		Partitions: f.pm,
		ProbeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestRouterStriding: each partition allocates only its own congruence
// class, and single-entity ops route to the owner.
func TestRouterStriding(t *testing.T) {
	f := startPartitions(t, 2)
	r := openRouter(t, f)
	ctx := context.Background()

	// Create a node on each partition explicitly.
	var ids []neograph.NodeID
	for part := uint32(0); part < 2; part++ {
		p := part
		err := r.Pool(p).Write(ctx, "tok", func(c *Client) error {
			id, err := c.CreateNode(ctx, []string{"P"}, neograph.Props{"part": neograph.Int(int64(p))})
			ids = append(ids, id)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if r.PartitionOf(id) != uint32(i) {
			t.Fatalf("node %d allocated on partition %d has id %% 2 == %d", id, i, id%2)
		}
	}

	// Routed reads land on the owner and see the node.
	for i, id := range ids {
		err := r.Read(ctx, "tok", id, func(c *Client) error {
			n, err := c.GetNode(ctx, id)
			if err != nil {
				return err
			}
			if got := n.Props["part"]; !got.Equal(neograph.Int(int64(i))) {
				t.Fatalf("node %d: part prop %v", id, got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// A misrouted direct op is refused with the owner named.
	err := r.Pool(0).Write(ctx, "tok", func(c *Client) error {
		_, err := c.GetNode(ctx, ids[1])
		return err
	})
	if err == nil {
		t.Fatal("reading partition 1's node via partition 0 should fail")
	}
}

// TestRouterScanFanOut: label scans merge every partition's slice.
func TestRouterScanFanOut(t *testing.T) {
	f := startPartitions(t, 2)
	r := openRouter(t, f)
	ctx := context.Background()

	const n = 10
	for i := 0; i < n; i++ {
		if err := r.WriteAny(ctx, "tok", func(c *Client) error {
			_, err := c.CreateNode(ctx, []string{"Scan"}, nil)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := r.NodesByLabel(ctx, "tok", "Scan")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != n {
		t.Fatalf("scan found %d of %d nodes", len(ids), n)
	}
	// Round-robin creation spread the nodes over both partitions.
	var byPart [2]int
	for _, id := range ids {
		byPart[id%2]++
	}
	if byPart[0] == 0 || byPart[1] == 0 {
		t.Fatalf("creation not spread: %v", byPart)
	}
}

// TestRouterCrossPartitionBatch: one batch creating nodes on both
// partitions plus an edge between them commits atomically through 2PC,
// and the results merge back in batch order.
func TestRouterCrossPartitionBatch(t *testing.T) {
	f := startPartitions(t, 2)
	r := openRouter(t, f)
	ctx := context.Background()

	// Seed one node per partition.
	var anchor [2]neograph.NodeID
	for part := uint32(0); part < 2; part++ {
		p := part
		if err := r.Pool(p).Write(ctx, "tok", func(c *Client) error {
			id, err := c.CreateNode(ctx, []string{"Anchor"}, nil)
			anchor[p] = id
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Batch anchored on both partitions: set a prop on each anchor and
	// connect them. Home partition = owner of the edge's start.
	var b Batch
	i0 := b.SetNodeProp(anchor[0], "touched", neograph.Bool(true))
	i1 := b.SetNodeProp(anchor[1], "touched", neograph.Bool(true))
	ir := b.CreateRel("LINKS", anchor[0], anchor[1], nil)
	res, err := r.RunBatch(ctx, "tok", &b)
	if err != nil {
		t.Fatal(err)
	}
	relID, err := res.ID(ir)
	if err != nil {
		t.Fatal(err)
	}
	if r.PartitionOf(relID) != r.PartitionOf(anchor[0]) {
		t.Fatalf("edge %d not on start node's partition", relID)
	}
	_ = i0
	_ = i1

	// Both partitions observe their half.
	if err := r.Read(ctx, "tok", anchor[0], func(c *Client) error {
		n, err := c.GetNode(ctx, anchor[0])
		if err != nil {
			return err
		}
		if !n.Props["touched"].Equal(neograph.Bool(true)) {
			t.Fatal("partition 0 write lost")
		}
		rels, err := c.Relationships(ctx, anchor[0], "out")
		if err != nil {
			return err
		}
		if len(rels) != 1 || rels[0].End != anchor[1] {
			t.Fatalf("edge not visible on source: %+v", rels)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Read(ctx, "tok", anchor[1], func(c *Client) error {
		n, err := c.GetNode(ctx, anchor[1])
		if err != nil {
			return err
		}
		if !n.Props["touched"].Equal(neograph.Bool(true)) {
			t.Fatal("partition 1 write lost")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRouterCrossPartitionBatchAtomicAbort: a cross-partition batch
// whose later op fails must leave no partition changed.
func TestRouterCrossPartitionBatchAtomicAbort(t *testing.T) {
	f := startPartitions(t, 2)
	r := openRouter(t, f)
	ctx := context.Background()

	var anchor [2]neograph.NodeID
	for part := uint32(0); part < 2; part++ {
		p := part
		if err := r.Pool(p).Write(ctx, "tok", func(c *Client) error {
			id, err := c.CreateNode(ctx, []string{"A"}, nil)
			anchor[p] = id
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	var b Batch
	b.SetNodeProp(anchor[0], "x", neograph.Int(1))
	b.SetNodeProp(anchor[1], "x", neograph.Int(1))
	b.DeleteNode(anchor[0] + 2*1000) // nonexistent node on partition 0
	if _, err := r.RunBatch(ctx, "tok", &b); err == nil {
		t.Fatal("batch with a failing op should fail")
	}

	for part := uint32(0); part < 2; part++ {
		p := part
		if err := r.Read(ctx, "tok", anchor[p], func(c *Client) error {
			n, err := c.GetNode(ctx, anchor[p])
			if err != nil {
				return err
			}
			if _, ok := n.Props["x"]; ok {
				t.Fatalf("partition %d kept an aborted write", p)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouterNoPartitionOwner: a partition with a dead primary surfaces
// the structured error at the deadline, naming the partition.
func TestRouterNoPartitionOwner(t *testing.T) {
	f := startPartitions(t, 2)
	r := openRouter(t, f)

	// Kill partition 1 entirely.
	f.coords[1].Close()
	f.srvs[1].Close()
	f.dbs[1].Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := r.Write(ctx, "tok", 1 /* partition 1's ID space */, func(c *Client) error {
		_, e := c.CreateNode(ctx, nil, nil)
		return e
	})
	if err == nil {
		t.Fatal("write to a dead partition should fail")
	}
	if !errors.Is(err, ErrNoPartitionOwner) {
		t.Fatalf("want ErrNoPartitionOwner, got %v", err)
	}
	var npo *NoPartitionOwnerError
	if !errors.As(err, &npo) || npo.Partition != 1 {
		t.Fatalf("structured error: %v", err)
	}

	// Partition 0 still serves.
	if err := r.Write(context.Background(), "tok", 0, func(c *Client) error {
		_, e := c.CreateNode(context.Background(), nil, nil)
		return e
	}); err != nil {
		t.Fatal(err)
	}
}
