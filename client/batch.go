package client

import (
	"context"
	"fmt"

	"neograph"
	"neograph/internal/wire"
)

// Batch accumulates operations for submission in ONE round trip. Each
// builder method returns the op's index; after Run, fetch that op's
// result from the BatchResults by the same index.
//
// The server executes the whole batch inside a single transaction: the
// session's open explicit transaction if Begin is active, otherwise a
// transaction owned by the batch and committed when every op succeeds.
// Atomicity: the first failing op aborts the entire batch (and an
// enclosing explicit transaction) — Run then returns a *BatchError
// naming the failed op.
type Batch struct {
	reqs []wire.Request
	err  error // first build-time encoding error, surfaced by Run
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.reqs) }

// add queues a request and returns its index.
func (b *Batch) add(req wire.Request) int {
	b.reqs = append(b.reqs, req)
	return len(b.reqs) - 1
}

// fail records the first build-time error; the op still occupies an
// index so earlier handles stay valid.
func (b *Batch) fail(req wire.Request, err error) int {
	if b.err == nil {
		b.err = err
	}
	return b.add(req)
}

// CreateNode queues a node creation.
func (b *Batch) CreateNode(labels []string, props neograph.Props) int {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpCreateNode}, err)
	}
	return b.add(wire.Request{Op: wire.OpCreateNode, Labels: labels, Props: enc})
}

// GetNode queues a node fetch.
func (b *Batch) GetNode(id neograph.NodeID) int {
	return b.add(wire.Request{Op: wire.OpGetNode, ID: id})
}

// CreateRelRef queues a relationship creation whose endpoints are batch-
// local back references: startOp and endOp are the indexes (as returned
// by CreateNode) of EARLIER ops in this batch, and the relationship
// connects the nodes those ops created — so a node and its edges land in
// ONE round trip, no intermediate ID fetch. A reference to an op that is
// not earlier in the batch, or that did not create an entity, aborts the
// batch with a structured error naming the op.
func (b *Batch) CreateRelRef(relType string, startOp, endOp int, props neograph.Props) int {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpCreateRel}, err)
	}
	s, e := startOp, endOp
	return b.add(wire.Request{Op: wire.OpCreateRel, Type: relType, StartRef: &s, EndRef: &e, Props: enc})
}

// SetNodePropRef queues a property write on the node created by an
// earlier op of this batch (see CreateRelRef).
func (b *Batch) SetNodePropRef(op int, key string, v neograph.Value) int {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpSetNodeProp}, err)
	}
	o := op
	return b.add(wire.Request{Op: wire.OpSetNodeProp, IDRef: &o, Key: key, Value: enc})
}

// AddLabelRef queues a label addition on the node created by an earlier
// op of this batch (see CreateRelRef).
func (b *Batch) AddLabelRef(op int, label string) int {
	o := op
	return b.add(wire.Request{Op: wire.OpAddLabel, IDRef: &o, Label: label})
}

// SetNodeProp queues a node property write.
func (b *Batch) SetNodeProp(id neograph.NodeID, key string, v neograph.Value) int {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpSetNodeProp}, err)
	}
	return b.add(wire.Request{Op: wire.OpSetNodeProp, ID: id, Key: key, Value: enc})
}

// AddLabel queues a label addition.
func (b *Batch) AddLabel(id neograph.NodeID, label string) int {
	return b.add(wire.Request{Op: wire.OpAddLabel, ID: id, Label: label})
}

// RemoveLabel queues a label removal.
func (b *Batch) RemoveLabel(id neograph.NodeID, label string) int {
	return b.add(wire.Request{Op: wire.OpRemoveLabel, ID: id, Label: label})
}

// DeleteNode queues a node deletion.
func (b *Batch) DeleteNode(id neograph.NodeID) int {
	return b.add(wire.Request{Op: wire.OpDeleteNode, ID: id})
}

// DetachDeleteNode queues a node+relationships deletion.
func (b *Batch) DetachDeleteNode(id neograph.NodeID) int {
	return b.add(wire.Request{Op: wire.OpDetachDelete, ID: id})
}

// CreateRel queues a relationship creation.
func (b *Batch) CreateRel(relType string, start, end neograph.NodeID, props neograph.Props) int {
	enc, err := wire.EncodeProps(props)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpCreateRel}, err)
	}
	return b.add(wire.Request{Op: wire.OpCreateRel, Type: relType, Start: start, End: end, Props: enc})
}

// GetRel queues a relationship fetch.
func (b *Batch) GetRel(id neograph.RelID) int {
	return b.add(wire.Request{Op: wire.OpGetRel, ID: id})
}

// SetRelProp queues a relationship property write.
func (b *Batch) SetRelProp(id neograph.RelID, key string, v neograph.Value) int {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpSetRelProp}, err)
	}
	return b.add(wire.Request{Op: wire.OpSetRelProp, ID: id, Key: key, Value: enc})
}

// DeleteRel queues a relationship deletion.
func (b *Batch) DeleteRel(id neograph.RelID) int {
	return b.add(wire.Request{Op: wire.OpDeleteRel, ID: id})
}

// Relationships queues a relationship listing.
func (b *Batch) Relationships(id neograph.NodeID, dir string, types ...string) int {
	return b.add(wire.Request{Op: wire.OpRels, ID: id, Dir: dir, Types: types})
}

// Neighbors queues an adjacency listing.
func (b *Batch) Neighbors(id neograph.NodeID, dir string, types ...string) int {
	return b.add(wire.Request{Op: wire.OpNeighbors, ID: id, Dir: dir, Types: types})
}

// NodesByLabel queues a label lookup.
func (b *Batch) NodesByLabel(label string) int {
	return b.add(wire.Request{Op: wire.OpNodesByLabel, Label: label})
}

// NodesByProperty queues a property lookup.
func (b *Batch) NodesByProperty(key string, v neograph.Value) int {
	enc, err := wire.EncodeValue(v)
	if err != nil {
		return b.fail(wire.Request{Op: wire.OpNodesByProp}, err)
	}
	return b.add(wire.Request{Op: wire.OpNodesByProp, Key: key, Value: enc})
}

// AllNodes queues a full node-ID listing.
func (b *Batch) AllNodes() int {
	return b.add(wire.Request{Op: wire.OpAllNodes})
}

// BatchError reports which op aborted a batch. Unwrap exposes the op's
// error, mapped to engine sentinels, so errors.Is works.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("batch op %d: %v", e.Index, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// BatchResults holds a successful batch's per-op responses.
type BatchResults struct {
	resps []wire.Response
	lsn   uint64
}

// Len returns the number of op results.
func (r *BatchResults) Len() int { return len(r.resps) }

// LSN returns the batch transaction's commit position — the token for
// read-your-writes gating on replicas. Zero when the batch ran inside a
// still-open explicit transaction (Commit returns the token then).
func (r *BatchResults) LSN() uint64 { return r.lsn }

// at bounds-checks an op index.
func (r *BatchResults) at(i int) (*wire.Response, error) {
	if i < 0 || i >= len(r.resps) {
		return nil, fmt.Errorf("client: batch result index %d out of range (%d ops)", i, len(r.resps))
	}
	return &r.resps[i], nil
}

// ID returns op i's created entity ID (CreateNode / CreateRel).
func (r *BatchResults) ID(i int) (uint64, error) {
	resp, err := r.at(i)
	if err != nil {
		return 0, err
	}
	return resp.ID, nil
}

// Node returns op i's node snapshot (GetNode).
func (r *BatchResults) Node(i int) (neograph.Node, error) {
	resp, err := r.at(i)
	if err != nil {
		return neograph.Node{}, err
	}
	return decodeNode(resp.Node)
}

// Rel returns op i's relationship snapshot (GetRel).
func (r *BatchResults) Rel(i int) (neograph.Relationship, error) {
	resp, err := r.at(i)
	if err != nil {
		return neograph.Relationship{}, err
	}
	return decodeRel(resp.Rel)
}

// Rels returns op i's relationship list (Relationships).
func (r *BatchResults) Rels(i int) ([]neograph.Relationship, error) {
	resp, err := r.at(i)
	if err != nil {
		return nil, err
	}
	return decodeRels(resp.Rels)
}

// IDs returns op i's ID list (Neighbors / NodesByLabel / NodesByProperty
// / AllNodes).
func (r *BatchResults) IDs(i int) ([]uint64, error) {
	resp, err := r.at(i)
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// RunBatch submits the batch in one round trip. On a server-side abort
// the returned error is a *BatchError naming the failed op; the engine
// sentinel it wraps is reachable through errors.Is.
func (c *Client) RunBatch(ctx context.Context, b *Batch) (*BatchResults, error) {
	if b.err != nil {
		return nil, fmt.Errorf("client: batch build: %w", b.err)
	}
	req := &wire.Request{Op: wire.OpBatch, Batch: b.reqs}
	if err := wire.ValidateBatch(req); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		if resp != nil && resp.FailedOp != nil {
			// The server aborted the whole transaction — including an
			// enclosing explicit one.
			c.SetTxClosed()
			return nil, &BatchError{Index: *resp.FailedOp, Err: err}
		}
		return nil, err
	}
	return &BatchResults{resps: resp.Results, lsn: resp.LSN}, nil
}
