package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"neograph"
	"neograph/internal/trace"
	"neograph/internal/wire"
)

// Query builds a server-side query plan: a seed set and a pipeline of
// stages the server executes against ONE MVCC snapshot, streaming the
// result back in chunks. Build with a Seed* constructor, chain stages,
// then run with Client.Query or Pool.Query:
//
//	q := client.SeedLabel("Person").KHop("out", 3).Limit(100)
//	st, err := c.Query(ctx, q)
//	for st.Next() { use(st.Row()) }
//	err = st.Err()
//
// Plan construction never fails eagerly; an invalid combination (or an
// unencodable property value) surfaces from Query.
type Query struct {
	plan wire.QueryPlan
	err  error
}

// SeedIDs starts a plan from explicit node IDs.
func SeedIDs(ids ...neograph.NodeID) *Query {
	return &Query{plan: wire.QueryPlan{Seed: wire.QuerySeed{IDs: ids}}}
}

// SeedLabel starts a plan from every node carrying label.
func SeedLabel(label string) *Query {
	return &Query{plan: wire.QueryPlan{Seed: wire.QuerySeed{Label: label}}}
}

// SeedProperty starts a plan from every node whose property key equals v.
func SeedProperty(key string, v neograph.Value) *Query {
	q := &Query{}
	raw, err := wire.EncodeValue(v)
	if err != nil {
		q.err = err
		return q
	}
	q.plan.Seed = wire.QuerySeed{Key: key, Value: raw}
	return q
}

// SeedAll starts a plan from every visible node.
func SeedAll() *Query {
	return &Query{plan: wire.QueryPlan{Seed: wire.QuerySeed{All: true}}}
}

func (q *Query) stage(st wire.QueryStage) *Query {
	q.plan.Stages = append(q.plan.Stages, st)
	return q
}

// Expand replaces the row set with its deduplicated one-hop neighborhood
// ("out", "in", "both"; empty = both), optionally restricted to
// relationship types.
func (q *Query) Expand(dir string, types ...string) *Query {
	return q.stage(wire.QueryStage{Op: wire.StageExpand, Dir: dir, Types: types})
}

// KHop streams the breadth-first neighborhood within depth hops of the
// seed rows — every node once, with its discovery depth (seeds at 0).
func (q *Query) KHop(dir string, depth int, types ...string) *Query {
	return q.stage(wire.QueryStage{Op: wire.StageKHop, Dir: dir, Depth: depth, Types: types})
}

// ShortestPath emits a minimum-hop path from the plan's single seed node
// to end, in order; each row carries the relationship that reached it.
// Must be the plan's only stage.
func (q *Query) ShortestPath(end neograph.NodeID, dir string, types ...string) *Query {
	return q.stage(wire.QueryStage{Op: wire.StageShortestPath, End: end, Dir: dir, Types: types})
}

// PageRank ranks the whole visible graph and emits the top n rows (0 =
// all) with their scores. Zero damping/iterations select the server
// defaults. Must be the plan's only stage (seed with SeedAll).
func (q *Query) PageRank(damping float64, iterations, n int, types ...string) *Query {
	return q.stage(wire.QueryStage{Op: wire.StagePageRank,
		Damping: damping, Iterations: iterations, N: n, Types: types})
}

// FilterLabel keeps rows whose node carries label.
func (q *Query) FilterLabel(label string) *Query {
	return q.stage(wire.QueryStage{Op: wire.StageFilterLabel, Label: label})
}

// WhereEq keeps rows whose node property key equals v.
func (q *Query) WhereEq(key string, v neograph.Value) *Query {
	raw, err := wire.EncodeValue(v)
	if err != nil {
		q.err = err
		return q
	}
	return q.stage(wire.QueryStage{Op: wire.StageFilterEq, Key: key, Value: raw})
}

// WhereLt keeps rows whose node property key is strictly less than v.
func (q *Query) WhereLt(key string, v neograph.Value) *Query {
	raw, err := wire.EncodeValue(v)
	if err != nil {
		q.err = err
		return q
	}
	return q.stage(wire.QueryStage{Op: wire.StageFilterLt, Key: key, Value: raw})
}

// Limit stops the stream after n rows.
func (q *Query) Limit(n int) *Query {
	return q.stage(wire.QueryStage{Op: wire.StageLimit, N: n})
}

// Count reduces the stream to one row carrying the row count. Must be
// the last stage.
func (q *Query) Count() *Query {
	return q.stage(wire.QueryStage{Op: wire.StageCount})
}

// QueryRow is one streamed result row. Which fields are meaningful
// depends on the plan's last stage: traversals fill Depth, shortest-path
// rows carry the relationship that reached the node, PageRank fills
// Score, Count() fills only Count.
type QueryRow struct {
	ID    neograph.NodeID
	Depth int
	Rel   neograph.RelID
	Score float64
	Count uint64
}

// QueryStream iterates a streaming query result:
//
//	for st.Next() { use(st.Row()) }
//	if err := st.Err(); err != nil { ... }
//
// Rows arrive in server chunks, so iteration overlaps the server's own
// traversal — a million-row result costs chunk-sized memory on both
// ends. The stream must be fully consumed or Closed; abandoning it
// mid-way leaves frames in flight, so Close then marks the session
// broken (a Pool redials transparently). Cancelling the call's context
// tears the stream down the same way roundTrip cancellation does.
type QueryStream struct {
	c    *Client
	ctx  context.Context
	seq  uint64
	span *trace.Span
	// stop/ran join the context-cancellation watcher (see roundTrip).
	stop func() bool
	ran  chan struct{}

	rows  []wire.QueryRow
	pos   int
	cur   QueryRow
	final bool // final frame (More unset) received; no more I/O
	done  bool // transport released (watcher joined, span finished)
	err   error
}

// Query submits a plan for server-side execution and returns the result
// stream. Plan validation errors surface here (the server rejects the
// plan in its first — and only — frame); execution errors surface from
// the stream's Err. The session serves one stream at a time: finish or
// Close the stream before the next call on this client.
func (c *Client) Query(ctx context.Context, q *Query) (*QueryStream, error) {
	if c.broken {
		return nil, ErrBroken
	}
	if q.err != nil {
		return nil, fmt.Errorf("client: bad query: %w", q.err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req := &wire.Request{Op: wire.OpQuery, Plan: &q.plan, WaitLSN: c.readAfter}
	c.seq++
	req.Seq = c.seq
	sp := trace.SpanFrom(ctx)
	if sp == nil {
		sp = c.span
	}
	if sp != nil {
		sp = sp.Child("client.query")
	} else {
		sp = c.tracer.StartRoot("client.query")
	}
	if sp != nil {
		sc := sp.Context()
		req.Trace = &wire.TraceContext{TraceID: sc.TraceID, SpanID: sc.SpanID}
	}
	st := &QueryStream{c: c, ctx: ctx, seq: req.Seq, span: sp}
	// The context governs the WHOLE stream: its deadline becomes the wire
	// budget and the connection I/O deadline (with the usual grace for the
	// server's clean deadline-error frame), and cancellation poisons the
	// connection exactly as in roundTrip — but the watcher lives until the
	// stream ends, not just this call.
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			st.release()
			return nil, fmt.Errorf("client: %w", context.DeadlineExceeded)
		}
		ms := rem.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMS = ms
		c.conn.SetDeadline(dl.Add(deadlineGrace))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if ctx.Done() != nil {
		st.ran = make(chan struct{})
		st.stop = context.AfterFunc(ctx, func() {
			defer close(st.ran)
			if errors.Is(ctx.Err(), context.Canceled) {
				c.conn.SetDeadline(time.Unix(1, 0))
			}
		})
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = true
		sp.Set("error", "send failed")
		st.release()
		return nil, c.callErr(ctx, "send", err)
	}
	// Decode the first frame eagerly so a rejected plan fails the call
	// itself, not the first Next.
	if err := st.fetchFrame(); err != nil {
		return nil, err
	}
	return st, nil
}

// fetchFrame decodes one response frame into the row buffer, enforcing
// the per-frame seq echo and mapping error frames to their sentinels.
func (st *QueryStream) fetchFrame() error {
	c := st.c
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		c.broken = true
		st.span.Set("error", "recv failed")
		err = c.callErr(st.ctx, "recv", err)
		st.fail(err)
		return err
	}
	if resp.Seq != 0 && resp.Seq != st.seq {
		c.broken = true
		err := fmt.Errorf("client: stream frame seq %d for request seq %d: %w", resp.Seq, st.seq, ErrBroken)
		st.fail(err)
		return err
	}
	if !resp.OK {
		err := remoteError(resp.Code, resp.Error)
		st.fail(err)
		return err
	}
	st.rows, st.pos = resp.Rows, 0
	if !resp.More {
		st.final = true
		st.release() // last frame read: the connection is quiet again
	}
	return nil
}

// fail records the stream's terminal error and releases the transport.
func (st *QueryStream) fail(err error) {
	st.err = err
	st.final = true
	st.release()
}

// release joins the cancellation watcher, restores the connection
// deadline and finishes the span. Idempotent.
func (st *QueryStream) release() {
	if st.done {
		return
	}
	st.done = true
	if st.stop != nil && !st.stop() {
		<-st.ran
	}
	if !st.c.broken {
		st.c.conn.SetDeadline(time.Time{})
	}
	st.span.Finish()
}

// Next advances to the next row, fetching frames as needed. It returns
// false at the end of the stream or on error — check Err afterwards.
func (st *QueryStream) Next() bool {
	for {
		if st.err != nil {
			return false
		}
		if st.pos < len(st.rows) {
			r := st.rows[st.pos]
			st.pos++
			st.cur = QueryRow{ID: r.ID, Depth: r.Depth, Rel: r.Rel, Score: r.Score, Count: r.Count}
			return true
		}
		if st.final {
			return false
		}
		if st.fetchFrame() != nil {
			return false
		}
	}
}

// Row returns the row Next advanced to.
func (st *QueryStream) Row() QueryRow { return st.cur }

// Err returns the stream's terminal error: nil after a complete,
// successful stream.
func (st *QueryStream) Err() error { return st.err }

// Close releases the stream. Closing before the final frame arrived
// abandons frames in flight, so the session is marked broken (framing
// can no longer be trusted); a fully consumed stream closes for free.
func (st *QueryStream) Close() error {
	if !st.final {
		st.c.broken = true
	}
	st.release()
	return st.err
}

// Query runs a streaming query on the replica fleet: the plan is
// read-only, so it routes like any read — the causality token's newest
// commit LSN gates the chosen replica (read-your-writes), a replica that
// dies mid-stream breaks that session and the pool retries fn with a
// fresh stream on the next candidate, the primary last. fn must
// therefore be restartable: it may observe a partial stream, then run
// again from the top on another host.
func (p *Pool) Query(ctx context.Context, token string, q *Query, fn func(*QueryStream) error) error {
	return p.Read(ctx, token, func(c *Client) error {
		st, err := c.Query(ctx, q)
		if err != nil {
			return err
		}
		defer st.Close()
		if err := fn(st); err != nil {
			return err
		}
		return st.Err()
	})
}
