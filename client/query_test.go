package client_test

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"neograph"
	. "neograph/client"
	"neograph/internal/query"
)

// seedGraph creates n nodes labeled S embedded (no wire round trips).
func seedGraph(t *testing.T, db *neograph.DB, n int) []neograph.NodeID {
	t.Helper()
	ids := make([]neograph.NodeID, n)
	err := db.Update(0, func(tx *neograph.Tx) error {
		for i := range ids {
			var err error
			ids[i], err = tx.CreateNode([]string{"S"}, neograph.Props{"i": neograph.Int(int64(i))})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestQueryStreamClient(t *testing.T) {
	db, _, cl := startServer(t)
	ctx := context.Background()
	const n = 1200 // multiple chunks
	ids := seedGraph(t, db, n)

	st, err := cl.Query(ctx, SeedAll())
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for st.Next() {
		rows++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}

	// Filters and count compose server-side; one row comes back.
	st, err = cl.Query(ctx, SeedLabel("S").WhereLt("i", neograph.Int(100)).Count())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() || st.Row().Count != 100 || st.Next() {
		t.Fatalf("count query row = %+v", st.Row())
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// The session survives consumed streams: a plain call still works.
	if _, err := cl.GetNode(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
}

func TestQueryBadPlanKeepsSession(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()
	// count must be last: the server rejects the plan in a single clean
	// frame and Query surfaces it as the call's error.
	_, err := cl.Query(ctx, SeedAll().Count().Limit(1))
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
	if cl.Broken() {
		t.Fatal("rejected plan broke the session")
	}
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestQueryStreamCancelMidStream(t *testing.T) {
	db, _, cl := startServer(t)
	seedGraph(t, db, 20000) // well past what one decoder refill buffers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := cl.Query(ctx, SeedAll())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first row: %v", st.Err())
	}
	cancel()
	// The cancellation watcher poisons the connection deadline from its
	// own goroutine; give it a beat so the next transport read observes it.
	time.Sleep(20 * time.Millisecond)
	for st.Next() {
	}
	if err := st.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !cl.Broken() {
		t.Fatal("cancelled mid-stream session not marked broken")
	}
}

func TestQueryStreamCloseEarlyBreaksSession(t *testing.T) {
	db, _, cl := startServer(t)
	seedGraph(t, db, 1200)
	st, err := cl.Query(context.Background(), SeedAll())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Next() {
		t.Fatalf("no first row: %v", st.Err())
	}
	st.Close() // frames still in flight: framing untrusted from here
	if !cl.Broken() {
		t.Fatal("early Close left the session un-broken")
	}
	if _, err := cl.AllNodes(context.Background()); !errors.Is(err, ErrBroken) {
		t.Fatalf("call after early Close = %v, want ErrBroken", err)
	}
}

// TestQueryBatchRefs is the client arm of the batch back-reference
// bugfix: a node, an edge to it, a property and a label — all referring
// to batch-local creations — land in ONE round trip.
func TestQueryBatchRefs(t *testing.T) {
	_, _, cl := startServer(t)
	ctx := context.Background()
	var b Batch
	alice := b.CreateNode([]string{"Person"}, nil)
	bob := b.CreateNode([]string{"Person"}, nil)
	knows := b.CreateRelRef("KNOWS", alice, bob, neograph.Props{"since": neograph.Int(2020)})
	b.SetNodePropRef(alice, "name", neograph.String("alice"))
	b.AddLabelRef(bob, "Brewer")
	res, err := cl.RunBatch(ctx, &b)
	if err != nil {
		t.Fatal(err)
	}
	aliceID, _ := res.ID(alice)
	bobID, _ := res.ID(bob)
	relID, _ := res.ID(knows)
	rel, err := cl.GetRel(ctx, relID)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Start != aliceID || rel.End != bobID {
		t.Fatalf("rel %d->%d, want %d->%d", rel.Start, rel.End, aliceID, bobID)
	}
	n, err := cl.GetNode(ctx, aliceID)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := n.Props["name"].AsString(); s != "alice" {
		t.Fatalf("ref-set prop = %v", n.Props["name"])
	}

	// A forward reference fails validation client-side, before any wire
	// traffic; a reference to a non-creating op aborts server-side with
	// the op named.
	var bad Batch
	bad.CreateRelRef("R", 0, 1, nil) // refs ops 0 and 1: itself and beyond
	if _, err := cl.RunBatch(ctx, &bad); err == nil {
		t.Fatal("self/forward ref accepted")
	}
	var bad2 Batch
	bad2.AllNodes()
	bad2.SetNodePropRef(0, "k", neograph.Int(1))
	_, err = cl.RunBatch(ctx, &bad2)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("non-creating ref err = %v, want BatchError at op 1", err)
	}
}

// TestQueryKHopStableUnderWriters is the snapshot-isolation equivalence
// check, meant for -race runs: a streamed k-hop over a static component
// must equal the embedded query.BFS answer while concurrent writers
// churn a disjoint component — the whole plan sees one MVCC snapshot.
func TestQueryKHopStableUnderWriters(t *testing.T) {
	db, _, cl := startServer(t)
	ctx := context.Background()

	// Static component A: a braided chain the writers never touch.
	var a []neograph.NodeID
	err := db.Update(0, func(tx *neograph.Tx) error {
		for i := 0; i < 24; i++ {
			id, err := tx.CreateNode([]string{"A"}, nil)
			if err != nil {
				return err
			}
			a = append(a, id)
		}
		for i := 0; i+1 < len(a); i++ {
			if _, err := tx.CreateRel("N", a[i], a[i+1], nil); err != nil {
				return err
			}
		}
		for i := 0; i+4 < len(a); i += 4 {
			if _, err := tx.CreateRel("SKIP", a[i], a[i+4], nil); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Writers churn component B concurrently: creates, edges, deletes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []neograph.NodeID
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Update(0, func(tx *neograph.Tx) error {
					id, err := tx.CreateNode([]string{"B"}, nil)
					if err != nil {
						return err
					}
					if len(mine) > 0 {
						if _, err := tx.CreateRel("B", mine[len(mine)-1], id, nil); err != nil {
							return err
						}
					}
					mine = append(mine, id)
					if len(mine) > 8 {
						if err := tx.DetachDeleteNode(mine[0]); err != nil {
							return err
						}
						mine = mine[1:]
					}
					return nil
				})
			}
		}()
	}

	type visit struct {
		id    neograph.NodeID
		depth int
	}
	for iter := 0; iter < 15; iter++ {
		st, err := cl.Query(ctx, SeedIDs(a[0]).KHop("both", 3))
		if err != nil {
			t.Fatal(err)
		}
		var streamed []visit
		for st.Next() {
			streamed = append(streamed, visit{st.Row().ID, st.Row().Depth})
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		var embedded []visit
		db.View(func(tx *neograph.Tx) error {
			return query.BFS(tx, a[0], neograph.Both, 3, func(id neograph.NodeID, d int) bool {
				embedded = append(embedded, visit{id, d})
				return true
			})
		})
		if len(streamed) != len(embedded) {
			t.Fatalf("iter %d: streamed %d visits, embedded %d", iter, len(streamed), len(embedded))
		}
		for i := range streamed {
			if streamed[i] != embedded[i] {
				t.Fatalf("iter %d: visit %d = %+v, embedded %+v", iter, i, streamed[i], embedded[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestQueryPoolRoutesToReplica checks the query op is replica-eligible
// with read-your-writes: the stream is served by a replica session gated
// on the token's LSN, never the primary while replicas are healthy.
func TestQueryPoolRoutesToReplica(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"QR"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Kill the primary's client-facing server (WAL shipping to the
	// replicas is a separate listener and stays up): if the query can
	// only run on the primary — the bug this PR fixes — it now fails.
	f.psrv.DrainGrace = 100 * time.Millisecond
	f.psrv.Close()
	rows := 0
	if err := p.Query(ctx, "u", SeedLabel("QR"), func(st *QueryStream) error {
		rows = 0 // restartable
		for st.Next() {
			rows++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("replica-routed query saw %d rows, want 1 (RYW gate)", rows)
	}
}

// choke is a TCP proxy that relays only the first `allow` response bytes
// of each connection, then leaves the wire hanging until Kill tears every
// connection down. It makes "the replica died mid-stream" deterministic:
// however fast the server streams and however large the kernel's socket
// buffers autotune, the client can never see more than `allow` bytes, so
// a larger result is ALWAYS still in flight when Kill fires.
type choke struct {
	ln    net.Listener
	allow int64
	mu    sync.Mutex
	conns []net.Conn
	once  sync.Once
	stall chan struct{}
}

func startChoke(t *testing.T, target string, allow int64) *choke {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &choke{ln: ln, allow: allow, stall: make(chan struct{})}
	go func() {
		for {
			down, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				down.Close()
				continue
			}
			c.mu.Lock()
			c.conns = append(c.conns, down, up)
			c.mu.Unlock()
			go io.Copy(up, down) // requests flow freely
			go func() {
				io.CopyN(down, up, c.allow) // budgeted responses...
				<-c.stall                   // ...then the wire hangs
			}()
		}
	}()
	t.Cleanup(c.Kill)
	return c
}

func (c *choke) Addr() string { return c.ln.Addr().String() }

// Kill closes the listener and every relayed connection: established
// streams tear, new dials are refused.
func (c *choke) Kill() {
	c.once.Do(func() {
		close(c.stall)
		c.ln.Close()
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, conn := range c.conns {
			conn.Close()
		}
	})
}

// TestQueryPoolFailoverMidStream kills the serving replica while a
// result is mid-flight: the pool must mark that stream's session broken,
// fail over to the next candidate (ultimately the primary) and re-run
// fn with a fresh, complete stream.
func TestQueryPoolFailoverMidStream(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	// Replica client traffic runs through throttling proxies (WAL
	// shipping from the primary is a separate listener and unaffected).
	ch1 := startChoke(t, f.r1srv.Addr(), 32<<10)
	ch2 := startChoke(t, f.r2srv.Addr(), 32<<10)
	p, err := OpenPool(ctx, PoolConfig{
		Primary:    f.psrv.Addr(),
		Replicas:   []string{ch1.Addr(), ch2.Addr()},
		Policy:     LeastLag,
		ProbeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// ~280KB of result — far past each connection's 32KB relay budget.
	const n = 20_000
	seedGraph(t, f.pdb, n)
	// One pool write after the bulk load: its token gates replicas on
	// having applied everything above.
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"Marker"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	attempts, rows := 0, 0
	err = p.Query(ctx, "u", SeedAll(), func(st *QueryStream) error {
		attempts++
		rows = 0
		for st.Next() {
			rows++
			if attempts == 1 && rows == 1 {
				// The replica fleet dies under the in-flight stream.
				ch1.Kill()
				ch2.Kill()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("query did not survive replica death: %v (attempts=%d)", err, attempts)
	}
	if attempts < 2 {
		t.Fatalf("stream completed in %d attempt(s); replica death never interrupted it", attempts)
	}
	if rows != n+1 {
		t.Fatalf("failed-over stream saw %d rows, want %d", rows, n+1)
	}
}

// TestQueryPoolPrimaryFallback: with no replicas at all, pool queries
// serve from the primary.
func TestQueryPoolPrimaryFallback(t *testing.T) {
	f := startFleet(t)
	ctx := context.Background()
	f.r1srv.Close()
	f.r2srv.Close()
	p, err := OpenPool(ctx, f.poolConfig(LeastLag))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Write(ctx, "u", func(c *Client) error {
		_, err := c.CreateNode(ctx, []string{"PF"}, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	count := uint64(0)
	if err := p.Query(ctx, "u", SeedLabel("PF").Count(), func(st *QueryStream) error {
		for st.Next() {
			count = st.Row().Count
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("primary-fallback count = %d, want 1", count)
	}
}
