module neograph

go 1.24
