package neograph

import (
	"neograph/internal/core"
	"neograph/internal/trace"
	"neograph/internal/value"
)

// Direction selects relationship orientation relative to a node.
type Direction = core.Direction

// Directions.
const (
	Outgoing = core.Outgoing
	Incoming = core.Incoming
	Both     = core.Both
)

// Node is an immutable snapshot of a node as seen by one transaction.
type Node = core.NodeSnapshot

// Relationship is an immutable snapshot of a relationship.
type Relationship = core.RelSnapshot

// Tx is a transaction handle. A Tx must be used by a single goroutine;
// different transactions run fully concurrently. Every Tx must end in
// exactly one Commit or Abort.
type Tx struct {
	t *core.Tx
}

// Commit publishes the transaction's writes atomically. Under snapshot
// isolation it can fail with ErrWriteConflict (first-committer-wins) —
// the transaction is then already aborted and should be retried.
func (tx *Tx) Commit() error { return tx.t.Commit() }

// Abort discards the transaction's writes. Abort after Commit (e.g. in a
// defer) is a harmless ErrTxDone.
func (tx *Tx) Abort() error { return tx.t.Abort() }

// StartTS exposes the snapshot timestamp (0 under read committed).
func (tx *Tx) StartTS() uint64 { return tx.t.StartTS() }

// CommitLSN returns the end position of the commit's WAL record after a
// successful Commit (0 for read-only transactions or in-memory
// databases). It is the read-your-writes token: hand it to a replica's
// WaitApplied — or to WaitDurable — before reading.
func (tx *Tx) CommitLSN() uint64 { return tx.t.CommitLSN() }

// SetTraceSpan attaches a tracing span to the transaction: Commit's
// pipeline stages (per-stripe validation, WAL append, group fsync,
// quorum wait) record child spans under it, and the trace context rides
// the WAL to replicas. A nil span (the unsampled case) is free.
func (tx *Tx) SetTraceSpan(s *trace.Span) { tx.t.SetTraceSpan(s) }

// CreateNode creates a node with labels and properties, private to this
// transaction until commit.
func (tx *Tx) CreateNode(labels []string, props Props) (NodeID, error) {
	return tx.t.CreateNode(labels, value.Map(props))
}

// GetNode returns the node visible in this transaction's snapshot.
func (tx *Tx) GetNode(id NodeID) (Node, error) { return tx.t.GetNode(id) }

// NodeExists reports whether the node is visible.
func (tx *Tx) NodeExists(id NodeID) (bool, error) { return tx.t.NodeExists(id) }

// SetNodeProp sets one node property.
func (tx *Tx) SetNodeProp(id NodeID, key string, v Value) error {
	return tx.t.SetNodeProp(id, key, v)
}

// SetNodeProps applies several property changes; Null values remove keys.
func (tx *Tx) SetNodeProps(id NodeID, props Props) error {
	return tx.t.SetNodeProps(id, value.Map(props))
}

// RemoveNodeProp removes one node property.
func (tx *Tx) RemoveNodeProp(id NodeID, key string) error {
	return tx.t.RemoveNodeProp(id, key)
}

// AddLabel adds a label to a node.
func (tx *Tx) AddLabel(id NodeID, label string) error { return tx.t.AddLabel(id, label) }

// RemoveLabel removes a label from a node.
func (tx *Tx) RemoveLabel(id NodeID, label string) error { return tx.t.RemoveLabel(id, label) }

// HasLabel reports whether the node carries the label.
func (tx *Tx) HasLabel(id NodeID, label string) (bool, error) { return tx.t.HasLabel(id, label) }

// DeleteNode deletes a relationship-free node (ErrHasRels otherwise).
func (tx *Tx) DeleteNode(id NodeID) error { return tx.t.DeleteNode(id) }

// DetachDeleteNode deletes a node and all its visible relationships.
func (tx *Tx) DetachDeleteNode(id NodeID) error { return tx.t.DetachDeleteNode(id) }

// CreateRel creates a relationship of relType from start to end.
func (tx *Tx) CreateRel(relType string, start, end NodeID, props Props) (RelID, error) {
	return tx.t.CreateRel(relType, start, end, value.Map(props))
}

// GetRel returns the relationship visible in this snapshot.
func (tx *Tx) GetRel(id RelID) (Relationship, error) { return tx.t.GetRel(id) }

// SetRelProp sets one relationship property.
func (tx *Tx) SetRelProp(id RelID, key string, v Value) error {
	return tx.t.SetRelProp(id, key, v)
}

// RemoveRelProp removes one relationship property.
func (tx *Tx) RemoveRelProp(id RelID, key string) error { return tx.t.RemoveRelProp(id, key) }

// DeleteRel deletes a relationship.
func (tx *Tx) DeleteRel(id RelID) error { return tx.t.DeleteRel(id) }

// Relationships returns the node's visible relationships filtered by
// direction and optional types, sorted by ID.
func (tx *Tx) Relationships(node NodeID, dir Direction, relTypes ...string) ([]Relationship, error) {
	return tx.t.Relationships(node, dir, relTypes...)
}

// Degree counts the node's visible relationships.
func (tx *Tx) Degree(node NodeID, dir Direction, relTypes ...string) (int, error) {
	return tx.t.Degree(node, dir, relTypes...)
}

// Neighbors returns adjacent node IDs over visible relationships.
func (tx *Tx) Neighbors(node NodeID, dir Direction, relTypes ...string) ([]NodeID, error) {
	return tx.t.Neighbors(node, dir, relTypes...)
}

// ForEachNeighbor calls fn with the ID at the far end of each visible
// relationship on node — the allocation-free fast path under Neighbors
// (no per-call set or sort). fn may see the same neighbor more than once
// when parallel edges connect the pair; traversal loops dedup against
// the seen set they already carry.
func (tx *Tx) ForEachNeighbor(node NodeID, dir Direction, fn func(NodeID), relTypes ...string) error {
	return tx.t.ForEachNeighbor(node, dir, relTypes, fn)
}

// NodesByLabel returns the IDs of nodes carrying label (versioned label
// index merged with this transaction's writes).
func (tx *Tx) NodesByLabel(label string) ([]NodeID, error) { return tx.t.NodesByLabel(label) }

// NodesByProperty returns the IDs of nodes with property key == val.
func (tx *Tx) NodesByProperty(key string, val Value) ([]NodeID, error) {
	return tx.t.NodesByProperty(key, val)
}

// RelsByProperty returns the IDs of relationships with property key == val.
func (tx *Tx) RelsByProperty(key string, val Value) ([]RelID, error) {
	return tx.t.RelsByProperty(key, val)
}

// AllNodes returns every visible node ID (full scan).
func (tx *Tx) AllNodes() ([]NodeID, error) { return tx.t.AllNodes() }

// AllRels returns every visible relationship ID (full scan).
func (tx *Tx) AllRels() ([]RelID, error) { return tx.t.AllRels() }

// NodeIterator streams node snapshots.
type NodeIterator = core.NodeIterator

// IterateNodesByLabel returns an iterator over nodes with the label.
func (tx *Tx) IterateNodesByLabel(label string) (*NodeIterator, error) {
	return tx.t.IterateNodesByLabel(label)
}

// IterateAllNodes returns an iterator over every visible node.
func (tx *Tx) IterateAllNodes() (*NodeIterator, error) { return tx.t.IterateAllNodes() }
