package neograph

import (
	"neograph/internal/core"
	"neograph/internal/value"
)

// Partitioned deployments: the database participates in a hash-partitioned
// cluster where node and relationship IDs are strided by partition
// (id % PartitionCount == PartitionID) and cross-partition transactions
// commit through two-phase commit. These passthroughs expose the engine's
// participant/coordinator surface to the server layer; embedded users of a
// single database never need them.

// TxnState reports what became of a global transaction (see TxnStatus).
type TxnState = core.TxnState

// Global transaction outcomes.
const (
	TxnCommitted = core.TxnCommitted
	TxnAborted   = core.TxnAborted
	TxnPending   = core.TxnPending
	TxnUnknown   = core.TxnUnknown
)

// ErrNotPrepared rejects a decision for a global transaction this node
// holds no prepared state for (already decided, or never prepared).
var ErrNotPrepared = core.ErrNotPrepared

// PreparedInfo describes one in-doubt transaction (see InDoubt).
type PreparedInfo = core.PreparedInfo

// DecidedInfo describes one unacknowledged commit decision this
// coordinator must keep re-pushing (see UnackedDecisions).
type DecidedInfo = core.DecidedInfo

// OwnsID reports whether this partition owns the given entity ID
// (id % PartitionCount == PartitionID; always true when unpartitioned).
func (db *DB) OwnsID(id uint64) bool { return db.eng().OwnsID(id) }

// PartitionID returns this database's partition number (0 when
// unpartitioned).
func (db *DB) PartitionID() uint32 { return uint32(db.opts.PartitionID) }

// PartitionCount returns the configured partition count (0 or 1 when
// unpartitioned).
func (db *DB) PartitionCount() int { return db.opts.PartitionCount }

// Prepare parks the transaction's staged writes durably under global
// transaction ID gtxn (phase one of two-phase commit): conflicts are
// validated now, write guards are retained until the decision, and a
// prepare record is fsynced to the WAL. validate lists locally-owned
// node IDs that must stay alive for the global transaction (edge
// endpoints referenced from other partitions). Returns the prepare
// record's end LSN. After Prepare the transaction handle is spent —
// the outcome is delivered through DecideTxn.
func (tx *Tx) Prepare(gtxn uint64, coordPart uint32, validate []uint64) (uint64, error) {
	return tx.t.Prepare(gtxn, coordPart, validate)
}

// DecideTxn commits or aborts the prepared transaction gtxn (phase two).
// On the coordinating partition, participants lists the other partitions
// involved: the durable decision record is then the global commit point
// and must be re-pushed until every participant acknowledges.
func (db *DB) DecideTxn(gtxn uint64, commit bool, participants []uint32) (uint64, error) {
	ts, err := db.eng().DecideTxn(gtxn, commit, participants)
	return uint64(ts), err
}

// TxnStatus answers a participant's in-doubt query: what became of gtxn
// on this (coordinating) partition. TxnUnknown means presumed abort.
func (db *DB) TxnStatus(gtxn uint64) TxnState { return db.eng().TxnStatus(gtxn) }

// AckDecision records that participant has acknowledged gtxn's commit
// decision; once every participant has, the repush obligation ends.
func (db *DB) AckDecision(gtxn uint64, participant uint32) {
	db.eng().AckDecision(gtxn, participant)
}

// InDoubt lists transactions prepared on this node whose decision has
// not arrived — the resolver asks each one's coordinating partition.
func (db *DB) InDoubt() []PreparedInfo { return db.eng().InDoubt() }

// UnackedDecisions lists commit decisions this coordinator must keep
// re-pushing to their participants.
func (db *DB) UnackedDecisions() []DecidedInfo { return db.eng().UnackedDecisions() }

// CreateRelCrossPartition creates a relationship whose endpoints may live
// on other partitions: locally-owned endpoints are validated and locked
// as CreateRel does, remote ones are guarded by the owning partition's
// prepare. Only valid on the two-phase-commit prepare path.
func (tx *Tx) CreateRelCrossPartition(relType string, start, end NodeID, props Props) (RelID, error) {
	return tx.t.CreateRelCrossPartition(relType, start, end, value.Map(props))
}
