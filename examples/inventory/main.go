// Inventory with durable storage: warehouses hold stock of products;
// concurrent orders decrement stock. First-updater-wins turns oversell
// races into clean retries, and the store directory survives restarts.
//
//	go run ./examples/inventory
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	"neograph"
)

func main() {
	dir, err := os.MkdirTemp("", "neograph-inventory-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}

	// Model: (Warehouse)-[:STOCKS {qty}]->(Product)
	var wh, widget neograph.NodeID
	var stock neograph.RelID
	err = db.Update(0, func(tx *neograph.Tx) error {
		wh, err = tx.CreateNode([]string{"Warehouse"}, neograph.Props{"city": neograph.String("Madrid")})
		if err != nil {
			return err
		}
		widget, err = tx.CreateNode([]string{"Product"}, neograph.Props{"sku": neograph.String("WIDGET-1")})
		if err != nil {
			return err
		}
		stock, err = tx.CreateRel("STOCKS", wh, widget, neograph.Props{"qty": neograph.Int(100)})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// 20 concurrent customers each try to buy 10 widgets. Stock is 100,
	// so exactly 10 orders can succeed; first-updater-wins + retry makes
	// the outcome exact (no lost updates, no oversell).
	var sold, rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 20; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			err := db.Update(100, func(tx *neograph.Tx) error {
				rel, err := tx.GetRel(stock)
				if err != nil {
					return err
				}
				qty, _ := rel.Props["qty"].AsInt()
				if qty < 10 {
					return errSoldOut
				}
				return tx.SetRelProp(stock, "qty", neograph.Int(qty-10))
			})
			switch {
			case err == nil:
				sold.Add(1)
			case errors.Is(err, errSoldOut):
				rejected.Add(1)
			default:
				log.Printf("order %d failed: %v", c, err)
			}
		}(c)
	}
	wg.Wait()

	var final int64
	db.View(func(tx *neograph.Tx) error {
		rel, err := tx.GetRel(stock)
		if err != nil {
			return err
		}
		final, _ = rel.Props["qty"].AsInt()
		return nil
	})
	fmt.Printf("orders fulfilled: %d, sold out for: %d, final stock: %d\n",
		sold.Load(), rejected.Load(), final)
	if final != 100-10*sold.Load() {
		log.Fatalf("accounting broken! stock %d after %d sales", final, sold.Load())
	}

	s := db.Stats()
	fmt.Printf("write conflicts resolved by retry: %d\n", s.WriteConflicts)

	// Durability: close and reopen from the same directory.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	db2, err := neograph.Open(neograph.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *neograph.Tx) error {
		rel, err := tx.GetRel(stock)
		if err != nil {
			return err
		}
		qty, _ := rel.Props["qty"].AsInt()
		w, err := tx.GetNode(wh)
		if err != nil {
			return err
		}
		city, _ := w.Props["city"].AsString()
		fmt.Printf("after restart: warehouse %s still stocks %d widgets (node %d, product %d)\n",
			city, qty, wh, widget)
		return nil
	})
}

var errSoldOut = errors.New("sold out")
