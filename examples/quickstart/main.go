// Quickstart: open an in-memory database, build a tiny graph, query it,
// and watch snapshot isolation in action.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"neograph"
)

func main() {
	db, err := neograph.Open(neograph.Options{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Build: two people who know each other.
	var alice, bob neograph.NodeID
	err = db.Update(0, func(tx *neograph.Tx) error {
		alice, err = tx.CreateNode([]string{"Person"}, neograph.Props{
			"name": neograph.String("alice"),
		})
		if err != nil {
			return err
		}
		bob, err = tx.CreateNode([]string{"Person"}, neograph.Props{
			"name": neograph.String("bob"),
		})
		if err != nil {
			return err
		}
		_, err = tx.CreateRel("KNOWS", alice, bob, neograph.Props{
			"since": neograph.Int(2016),
		})
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// Query: who does alice know?
	db.View(func(tx *neograph.Tx) error {
		nbrs, err := tx.Neighbors(alice, neograph.Outgoing, "KNOWS")
		if err != nil {
			return err
		}
		for _, id := range nbrs {
			n, err := tx.GetNode(id)
			if err != nil {
				return err
			}
			name, _ := n.Props["name"].AsString()
			fmt.Printf("alice knows %s (node %d)\n", name, id)
		}
		return nil
	})

	// Snapshot isolation: a reader's view is frozen at its start.
	reader := db.Begin()
	before, _ := reader.GetNode(bob)

	db.Update(0, func(tx *neograph.Tx) error {
		return tx.SetNodeProp(bob, "name", neograph.String("robert"))
	})

	after, _ := reader.GetNode(bob)
	b, _ := before.Props["name"].AsString()
	a, _ := after.Props["name"].AsString()
	fmt.Printf("reader saw %q before and %q after a concurrent rename (repeatable!)\n", b, a)
	reader.Abort()

	fresh := db.Begin()
	now, _ := fresh.GetNode(bob)
	name, _ := now.Props["name"].AsString()
	fmt.Printf("a fresh transaction sees %q\n", name)
	fresh.Abort()
}
