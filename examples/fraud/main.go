// Fraud-ring detection: accounts connected by transfers, with a detector
// that hunts for cycles (money returning to its origin) inside one
// snapshot. Demonstrates why §1's anomalies matter operationally: under
// read committed a cycle can appear to vanish mid-detection; under
// snapshot isolation the detector's two passes always agree.
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"

	"neograph"
	"neograph/internal/query"
)

const transfer = "TRANSFER"

func main() {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Accounts 0..9; a fraud ring 2 -> 5 -> 8 -> 2 plus background noise.
	accounts := make([]neograph.NodeID, 10)
	err = db.Update(0, func(tx *neograph.Tx) error {
		for i := range accounts {
			accounts[i], err = tx.CreateNode([]string{"Account"}, neograph.Props{
				"iban": neograph.String(fmt.Sprintf("AC%04d", i)),
			})
			if err != nil {
				return err
			}
		}
		ring := [][2]int{{2, 5}, {5, 8}, {8, 2}}
		noise := [][2]int{{0, 1}, {1, 3}, {3, 4}, {6, 7}, {7, 9}, {4, 6}}
		for _, e := range append(ring, noise...) {
			if _, err := tx.CreateRel(transfer, accounts[e[0]], accounts[e[1]],
				neograph.Props{"amount": neograph.Float(999.99)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1 of the detector: find accounts that can reach themselves.
	detector := db.Begin()
	defer detector.Abort()

	var suspects []neograph.NodeID
	for _, acc := range accounts {
		// An account is in a ring if following transfers outward reaches a
		// node that transfers back into it.
		incoming, err := detector.Relationships(acc, neograph.Incoming, transfer)
		if err != nil {
			log.Fatal(err)
		}
		reach, err := query.Reachable(detector, acc, neograph.Outgoing, -1, transfer)
		if err != nil {
			log.Fatal(err)
		}
		inRing := false
		for _, in := range incoming {
			for _, r := range reach {
				if r == in.Start {
					inRing = true
				}
			}
		}
		if inRing {
			suspects = append(suspects, acc)
		}
	}
	fmt.Printf("pass 1: suspects %v\n", suspects)

	// Meanwhile an attacker (or an unlucky batch job) deletes one edge of
	// the ring in a concurrent transaction...
	err = db.Update(0, func(tx *neograph.Tx) error {
		rels, err := tx.Relationships(accounts[5], neograph.Outgoing, transfer)
		if err != nil {
			return err
		}
		for _, r := range rels {
			if r.End == accounts[8] {
				fmt.Printf("concurrent txn deletes the %d -> %d transfer\n", 5, 8)
				return tx.DeleteRel(r.ID)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pass 2: re-verify each suspect inside the SAME transaction — a node
	// is still in a ring if some node it reaches transfers back into it.
	// Under snapshot isolation the evidence cannot vanish mid-detection.
	verified := 0
	for _, s := range suspects {
		if inCycle(detector, s) {
			verified++
		}
	}
	fmt.Printf("pass 2 (same snapshot): %d of %d suspects still verifiable — evidence preserved\n",
		verified, len(suspects))

	// The same two-pass detector under read committed loses the evidence.
	rc := db.BeginIsolation(neograph.ReadCommitted)
	defer rc.Abort()
	still := 0
	for _, s := range suspects {
		if inCycle(rc, s) {
			still++
		}
	}
	fmt.Printf("read committed can still verify %d of %d — the anomaly the paper fixes\n",
		still, len(suspects))
}

// inCycle reports whether node s sits on a directed transfer cycle in
// tx's view of the graph.
func inCycle(tx *neograph.Tx, s neograph.NodeID) bool {
	reach, err := query.Reachable(tx, s, neograph.Outgoing, -1, transfer)
	if err != nil {
		return false
	}
	for _, r := range reach {
		nbrs, err := tx.Neighbors(r, neograph.Outgoing, transfer)
		if err != nil {
			continue
		}
		for _, n := range nbrs {
			if n == s {
				return true
			}
		}
	}
	return false
}
