// Social network analysis: build a preferential-attachment social graph
// and run the multi-hop traversals the paper's introduction motivates —
// friends-of-friends, shortest paths, components, triangles — all inside
// one consistent snapshot while writers keep mutating the graph.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"neograph"
	"neograph/internal/query"
	"neograph/internal/workload"
)

func main() {
	db, err := neograph.Open(neograph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Println("building social graph (2000 people)...")
	g, err := workload.BuildSocial(db, workload.SocialConfig{People: 2000, AvgFriends: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Background writers keep churning while we analyse.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				id := g.People[(w*librarian+i)%len(g.People)]
				_ = db.Update(2, func(tx *neograph.Tx) error {
					return tx.SetNodeProp(id, "balance", neograph.Int(int64(i)))
				})
			}
		}(w)
	}

	// All analysis runs in ONE snapshot transaction: every traversal sees
	// the same consistent graph no matter what the writers do.
	start := time.Now()
	err = db.View(func(tx *neograph.Tx) error {
		alice := g.People[0]

		fof, err := query.Reachable(tx, alice, neograph.Both, 2, workload.RelKnows)
		if err != nil {
			return err
		}
		fmt.Printf("friends-of-friends of person 0: %d people\n", len(fof))

		path, err := query.ShortestPath(tx, alice, g.People[len(g.People)-1], neograph.Both, workload.RelKnows)
		if err == nil {
			fmt.Printf("shortest path 0 -> %d: %d hops\n", len(g.People)-1, len(path.Rels))
		} else {
			fmt.Printf("no path 0 -> %d\n", len(g.People)-1)
		}

		wpath, err := query.WeightedShortestPath(tx, alice, g.People[len(g.People)/2], neograph.Both, "weight", 1, workload.RelKnows)
		if err == nil {
			fmt.Printf("cheapest path 0 -> %d: cost %.2f over %d hops\n",
				len(g.People)/2, wpath.Cost, len(wpath.Rels))
		}

		comps, err := query.ConnectedComponents(tx)
		if err != nil {
			return err
		}
		fmt.Printf("connected components: %d (largest %d)\n", len(comps), len(comps[0]))

		tris, err := query.TriangleCount(tx)
		if err != nil {
			return err
		}
		fmt.Printf("triangles: %d\n", tris)

		deg, err := query.Degrees(tx)
		if err != nil {
			return err
		}
		fmt.Printf("degrees: min %d, max %d, avg %.2f over %d nodes / %d rels\n",
			deg.MinDegree, deg.MaxDegree, deg.AvgDegree, deg.Nodes, deg.Rels)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis finished in %v with writers running — one snapshot throughout\n",
		time.Since(start).Round(time.Millisecond))

	close(stop)
	wg.Wait()
	s := db.Stats()
	fmt.Printf("engine: %d commits, %d write conflicts, gc backlog %d\n",
		s.Committed, s.WriteConflicts, db.GCBacklog())
	db.RunGC()
	fmt.Printf("after gc: backlog %d\n", db.GCBacklog())
}

// librarian is just a large odd stride so writers spread over the graph.
const librarian = 7919
