// Partitioned: the vertex space hash-partitioned over two primary
// groups, each with its own replica — driven through client.Router,
// which hashes every operation to the owning partition. Shows the
// strided ID allocation, a cross-partition edge committed atomically
// with two-phase commit, and an in-group failover the router and the
// surviving coordinators follow automatically.
//
//	go run ./examples/partitioned
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/partition"
	"neograph/internal/server"
	"neograph/internal/wire"
)

const parts = 2

// group is one partition: a primary shipping its WAL to a replica, both
// behind TCP servers, both running a partition coordinator (the replica
// too — promotion must inherit the 2PC resolver duties).
type group struct {
	primary, replica           *neograph.DB
	primarySrv, replicaSrv     *server.Server
	primaryCoord, replicaCoord *partition.Coordinator
}

func main() {
	ctx := context.Background()

	// ---- the fleet: two partition groups, each primary + replica.
	var groups [parts]*group
	pm := wire.PartitionMap{Version: 1, Count: parts}
	for p := 0; p < parts; p++ {
		g := &group{}
		pdir, _ := os.MkdirTemp("", "ng-part-primary-*")
		defer os.RemoveAll(pdir)
		var err error
		g.primary, err = neograph.Open(neograph.Options{
			Dir:             pdir,
			PartitionID:     p, // strides node IDs: this node allocates id % 2 == p
			PartitionCount:  parts,
			ReplicationAddr: "127.0.0.1:0",
			SyncReplicas:    1, // an acked write survives primary loss
		})
		check(err)
		g.primarySrv, err = server.New(g.primary, "127.0.0.1:0")
		check(err)

		rdir, _ := os.MkdirTemp("", "ng-part-replica-*")
		defer os.RemoveAll(rdir)
		g.replica, err = neograph.Open(neograph.Options{
			Dir:            rdir,
			PartitionID:    p,
			PartitionCount: parts,
			ReplicaOf:      g.primary.ReplicationAddress(),
		})
		check(err)
		g.replicaSrv, err = server.New(g.replica, "127.0.0.1:0")
		check(err)

		groups[p] = g
		pm.Groups = append(pm.Groups, wire.PartitionGroup{
			ID:    uint32(p),
			Addrs: []string{g.primarySrv.Addr(), g.replicaSrv.Addr()},
		})
	}
	// Coordinators need the complete map, so wire them after the loop.
	for p, g := range groups {
		g.primaryCoord = partition.NewCoordinator(uint32(p), partition.NewTopology(pm),
			g.primarySrv.Local(), g.primary.AppliedLSN(), nil)
		g.primarySrv.SetPartition(g.primaryCoord, uint32(p), parts)
		g.primaryCoord.Start()
		g.replicaCoord = partition.NewCoordinator(uint32(p), partition.NewTopology(pm),
			g.replicaSrv.Local(), g.replica.AppliedLSN(), nil)
		g.replicaSrv.SetPartition(g.replicaCoord, uint32(p), parts)
		g.replicaCoord.Start()
		defer g.replicaCoord.Close()
		defer g.replicaSrv.Close()
		defer g.replica.Close()
		fmt.Printf("partition %d: primary %s, replica %s\n",
			p, g.primarySrv.Addr(), g.replicaSrv.Addr())
	}

	// ---- a partition-aware router: one pool per group, every call
	// hashed to the partition that owns the entity.
	router, err := client.OpenRouter(ctx, client.RouterConfig{Partitions: pm})
	check(err)
	defer router.Close()

	// ---- strided allocation: each partition hands out the IDs it owns
	// (id % 2 == partition), so ownership is computable from the ID alone.
	const user = "teller"
	var byPart [parts]neograph.NodeID
	for i := 0; i < 4; i++ {
		var b client.Batch
		ref := b.CreateNode([]string{"Account"}, neograph.Props{"n": neograph.Int(int64(i))})
		res, err := router.RunBatch(ctx, user, &b)
		check(err)
		id, _ := res.ID(ref)
		byPart[uint64(id)%parts] = id
		fmt.Printf("account %d -> node %d, owned by partition %d\n", i, id, uint64(id)%parts)
	}
	a0, a1 := byPart[0], byPart[1]

	// ---- single-partition writes take the ordinary fast path: the
	// router hashes the ID and the owner commits alone, no coordination.
	check(router.Write(ctx, user, uint64(a0), func(c *client.Client) error {
		return c.SetNodeProp(ctx, a0, "balance", neograph.Int(100))
	}))

	// ---- a cross-partition edge: one batch touching both partitions is
	// committed with two-phase commit — the home partition prepares both
	// sides, hardens the decision in its WAL, and the edge plus both
	// property writes become visible atomically (or not at all).
	var b client.Batch
	b.SetNodeProp(a0, "balance", neograph.Int(60))
	b.SetNodeProp(a1, "balance", neograph.Int(40))
	b.CreateRel("PAYS", a0, a1, neograph.Props{"amount": neograph.Int(40)})
	_, err = router.RunBatch(ctx, user, &b)
	check(err)
	fmt.Printf("cross-partition transfer %d -> %d committed via 2PC\n", a0, a1)

	// The edge lives on the source partition (its owner):
	check(router.Read(ctx, user, uint64(a0), func(c *client.Client) error {
		nbrs, err := c.Neighbors(ctx, a0, "out")
		fmt.Printf("partition %d: node %d -> neighbors %v\n", uint64(a0)%parts, a0, nbrs)
		return err
	}))

	// ---- in-group failover: partition 1's primary dies; its replica is
	// promoted in place. The router re-probes the group and re-routes;
	// the promoted node's coordinator takes over 2PC duties.
	fmt.Println("\n-- killing partition 1's primary --")
	g1 := groups[1]
	shipAddr := g1.primary.ReplicationAddress()
	g1.primaryCoord.Close()
	g1.primarySrv.Close()
	g1.primary.Close()

	cl, err := client.Dial(ctx, g1.replicaSrv.Addr())
	check(err)
	st, err := cl.Promote(ctx, shipAddr)
	cl.Close()
	check(err)
	fmt.Printf("promoted %s: role=%s epoch=%d\n", g1.replicaSrv.Addr(), st.Role, st.Epoch)
	time.Sleep(200 * time.Millisecond) // let pools re-probe the group

	// Writes to partition 1 resume on the promoted primary, and a fresh
	// cross-partition 2PC commit spans the old partition-0 primary and
	// the newly promoted partition-1 primary.
	var b2 client.Batch
	b2.SetNodeProp(a0, "balance", neograph.Int(50))
	b2.SetNodeProp(a1, "balance", neograph.Int(50))
	b2.CreateRel("PAYS", a0, a1, neograph.Props{"amount": neograph.Int(10)})
	_, err = router.RunBatch(ctx, user, &b2)
	check(err)
	fmt.Println("cross-partition transfer committed across the failover")

	for p := 0; p < parts; p++ {
		check(router.Read(ctx, user, uint64(byPart[p]), func(c *client.Client) error {
			n, err := c.GetNode(ctx, byPart[p])
			if err != nil {
				return err
			}
			bal, _ := n.Props["balance"].AsInt()
			fmt.Printf("partition %d (%s): node %d balance=%d\n", p, c.RemoteAddr(), byPart[p], bal)
			return nil
		}))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
