// Remote: a 1-primary/2-replica fleet served over TCP, driven through
// the public neograph/client SDK — pipelined batches (one round trip),
// topology-aware pooled routing with read-your-writes causality tokens,
// and a live failover the pool follows automatically.
//
//	go run ./examples/remote
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"neograph"
	"neograph/client"
	"neograph/internal/server"
)

func main() {
	ctx := context.Background()

	// ---- the fleet: one primary shipping its WAL to two replicas,
	// each node behind a TCP server (all in-process for the demo).
	primaryDir, _ := os.MkdirTemp("", "ng-remote-primary-*")
	defer os.RemoveAll(primaryDir)
	primary, err := neograph.Open(neograph.Options{
		Dir:             primaryDir,
		ReplicationAddr: "127.0.0.1:0",
		SyncReplicas:    1, // an acked write survives primary loss
	})
	check(err)
	replAddr := primary.ReplicationAddress()
	psrv, err := server.New(primary, "127.0.0.1:0")
	check(err)

	var replicas []*neograph.DB
	var replicaSrvs []*server.Server
	for i := 0; i < 2; i++ {
		dir, _ := os.MkdirTemp("", "ng-remote-replica-*")
		defer os.RemoveAll(dir)
		rdb, err := neograph.Open(neograph.Options{Dir: dir, ReplicaOf: replAddr})
		check(err)
		defer rdb.Close()
		rsrv, err := server.New(rdb, "127.0.0.1:0")
		check(err)
		defer rsrv.Close()
		replicas = append(replicas, rdb)
		replicaSrvs = append(replicaSrvs, rsrv)
	}
	fmt.Printf("fleet: primary %s, replicas %s + %s\n",
		psrv.Addr(), replicaSrvs[0].Addr(), replicaSrvs[1].Addr())

	// ---- a topology-aware pool over the fleet.
	pool, err := client.OpenPool(ctx, client.PoolConfig{
		Primary:  psrv.Addr(),
		Replicas: []string{replicaSrvs[0].Addr(), replicaSrvs[1].Addr()},
		Policy:   client.LeastLag,
	})
	check(err)
	defer pool.Close()

	// ---- build a small social graph in ONE round trip per batch.
	const user = "alice" // the causality token for this session
	var ada, bob neograph.NodeID
	check(pool.Write(ctx, user, func(c *client.Client) error {
		b := &client.Batch{}
		ia := b.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("ada")})
		ib := b.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("bob")})
		res, err := c.RunBatch(ctx, b)
		if err != nil {
			return err
		}
		ada, _ = res.ID(ia)
		bob, _ = res.ID(ib)
		b2 := &client.Batch{}
		b2.CreateRel("KNOWS", ada, bob, neograph.Props{"since": neograph.Int(2016)})
		b2.SetNodeProp(ada, "age", neograph.Int(36))
		_, err = c.RunBatch(ctx, b2)
		return err
	}))
	fmt.Printf("wrote ada=%d bob=%d in 2 batched round trips (token LSN %d)\n",
		ada, bob, pool.Token(user))

	// ---- read-your-writes from a replica: the pool injects the token's
	// LSN as the wait_lsn gate, so even a lagging replica shows the write.
	check(pool.Read(ctx, user, func(c *client.Client) error {
		n, err := c.GetNode(ctx, ada)
		if err != nil {
			return err
		}
		nbrs, err := c.Neighbors(ctx, ada, "out")
		if err != nil {
			return err
		}
		fmt.Printf("replica %s: ada %v -> neighbors %v (own writes visible)\n",
			c.RemoteAddr(), n.Props["name"], nbrs)
		return nil
	}))

	// ---- failover: the primary dies; an operator promotes replica 0
	// onto the dead primary's shipping address so replica 1 re-points.
	fmt.Println("\n-- killing the primary --")
	psrv.Close()
	primary.Close()
	cl, err := client.Dial(ctx, replicaSrvs[0].Addr())
	check(err)
	st, err := cl.Promote(ctx, replAddr)
	cl.Close()
	check(err)
	fmt.Printf("promoted %s: role=%s epoch=%d\n", replicaSrvs[0].Addr(), st.Role, st.Epoch)

	// The pool's next write hits the dead primary, probes the fleet,
	// finds the promoted node and retries — transparently.
	check(pool.Write(ctx, user, func(c *client.Client) error {
		return c.SetNodeProp(ctx, ada, "age", neograph.Int(37))
	}))
	fmt.Printf("write resumed on new primary %s (token LSN %d)\n",
		pool.PrimaryAddr(), pool.Token(user))

	// Read-your-writes still holds across the epoch bump.
	time.Sleep(200 * time.Millisecond) // let the surviving replica re-point
	check(pool.Read(ctx, user, func(c *client.Client) error {
		n, err := c.GetNode(ctx, ada)
		if err != nil {
			return err
		}
		age, _ := n.Props["age"].AsInt()
		fmt.Printf("read from %s after failover: ada.age=%d\n", c.RemoteAddr(), age)
		return nil
	}))

	for _, r := range replicas {
		st := r.ReplStatus()
		fmt.Printf("node: role=%s applied=%d epoch=%d\n", st.Role, st.AppliedLSN, st.Epoch)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
