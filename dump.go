package neograph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"neograph/internal/wire"
)

// Export writes a snapshot-consistent dump of the whole graph to w as
// newline-delimited JSON: one record per node, then one per relationship.
// Because it runs inside a single transaction, the dump is a consistent
// snapshot even while writers commit — the operational payoff of the
// paper's design (an online backup needs no quiescence).
//
// The format round-trips exactly through Import: entity IDs, labels,
// property types (including int64 precision and non-UTF-8 strings) are
// preserved using the wire codec's tagged values.
func Export(tx *Tx, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	nodes, err := tx.AllNodes()
	if err != nil {
		return err
	}
	for _, id := range nodes {
		n, err := tx.GetNode(id)
		if err != nil {
			return err
		}
		props, err := wire.EncodeProps(n.Props)
		if err != nil {
			return err
		}
		rec := struct {
			Kind   string          `json:"kind"`
			ID     uint64          `json:"id"`
			Labels []string        `json:"labels,omitempty"`
			Props  json.RawMessage `json:"props,omitempty"`
		}{"node", n.ID, n.Labels, props}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}

	rels, err := tx.AllRels()
	if err != nil {
		return err
	}
	for _, id := range rels {
		r, err := tx.GetRel(id)
		if err != nil {
			return err
		}
		props, err := wire.EncodeProps(r.Props)
		if err != nil {
			return err
		}
		rec := struct {
			Kind  string          `json:"kind"`
			ID    uint64          `json:"id"`
			Type  string          `json:"type"`
			Start uint64          `json:"start"`
			End   uint64          `json:"end"`
			Props json.RawMessage `json:"props,omitempty"`
		}{"rel", r.ID, r.Type, r.Start, r.End, props}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportStats reports what Import created.
type ImportStats struct {
	Nodes int
	Rels  int
}

// Import reads a dump produced by Export into db. Entity IDs are NOT
// preserved — fresh IDs are allocated and relationships re-linked through
// the dump's ID mapping — so a dump can be imported into a non-empty
// database. Records are committed in batches.
func Import(db *DB, r io.Reader) (ImportStats, error) {
	type rawRec struct {
		Kind   string          `json:"kind"`
		ID     uint64          `json:"id"`
		Labels []string        `json:"labels"`
		Type   string          `json:"type"`
		Start  uint64          `json:"start"`
		End    uint64          `json:"end"`
		Props  json.RawMessage `json:"props"`
	}
	var stats ImportStats
	idMap := make(map[uint64]NodeID)
	dec := json.NewDecoder(bufio.NewReader(r))

	const batchSize = 256
	var batch []rawRec
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		recs := batch
		batch = batch[:0]
		// The Update closure can re-run on a write conflict with outside
		// writers, so all bookkeeping is staged locally per attempt and
		// published only after the commit succeeds.
		var newIDs map[uint64]NodeID
		var nodes, rels int
		err := db.Update(10, func(tx *Tx) error {
			newIDs = make(map[uint64]NodeID)
			nodes, rels = 0, 0
			for _, rec := range recs {
				props, err := wire.DecodeProps(rec.Props)
				if err != nil {
					return err
				}
				switch rec.Kind {
				case "node":
					id, err := tx.CreateNode(rec.Labels, Props(props))
					if err != nil {
						return err
					}
					newIDs[rec.ID] = id
					nodes++
				case "rel":
					start, ok := newIDs[rec.Start]
					if !ok {
						if start, ok = idMap[rec.Start]; !ok {
							return fmt.Errorf("neograph: import: rel %d references unknown node %d", rec.ID, rec.Start)
						}
					}
					end, ok := newIDs[rec.End]
					if !ok {
						if end, ok = idMap[rec.End]; !ok {
							return fmt.Errorf("neograph: import: rel %d references unknown node %d", rec.ID, rec.End)
						}
					}
					if _, err := tx.CreateRel(rec.Type, start, end, Props(props)); err != nil {
						return err
					}
					rels++
				default:
					return fmt.Errorf("neograph: import: unknown record kind %q", rec.Kind)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		for orig, id := range newIDs {
			idMap[orig] = id
		}
		stats.Nodes += nodes
		stats.Rels += rels
		return nil
	}

	for {
		var rec rawRec
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return stats, fmt.Errorf("neograph: import: %w", err)
		}
		batch = append(batch, rec)
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				return stats, err
			}
		}
	}
	return stats, flush()
}
