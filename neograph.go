// Package neograph is an embedded graph database with snapshot isolation,
// reproducing "Snapshot Isolation for Neo4j" (Patiño-Martínez et al.,
// EDBT 2016).
//
// The data model is Neo4j's: nodes and relationships (edges) with typed
// properties; nodes additionally carry labels. Transactions run under
// snapshot isolation by default — every read observes the committed state
// as of the transaction's start, writes are private until commit, and
// write-write conflicts between concurrent transactions abort the second
// updater (first-updater-wins). Neo4j's native read committed level is
// available as a baseline, as is a first-committer-wins conflict policy.
//
// Quick start:
//
//	db, err := neograph.Open(neograph.Options{Dir: "/tmp/mygraph"})
//	if err != nil { ... }
//	defer db.Close()
//
//	tx := db.Begin()
//	alice, _ := tx.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("alice")})
//	bob, _ := tx.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("bob")})
//	tx.CreateRel("KNOWS", alice, bob, nil)
//	if err := tx.Commit(); err != nil { ... }
//
// Opening with an empty Dir gives a purely in-memory database (no WAL, no
// store files) — useful for tests and benchmarks.
//
// # Durability
//
// A nil return from Commit means the transaction's redo record has been
// fsynced to the write-ahead log (unless DisableSyncCommits is set) and
// will be replayed after a crash. Concurrent committers share fsyncs
// through a group-commit batcher — see Options.CommitMaxBatch,
// Options.CommitMaxDelay and Options.DisableGroupCommit — so multi-writer
// commit throughput is not bounded by one disk flush per transaction.
package neograph

import (
	"errors"
	"math/rand"
	"time"

	"neograph/internal/core"
)

// Isolation levels for transactions.
const (
	// SnapshotIsolation (default): reads from a stable snapshot, no read
	// locks, first-updater-wins write-write conflict detection.
	SnapshotIsolation = core.SnapshotIsolation
	// ReadCommitted: Neo4j's native level — short read locks, long write
	// locks, no snapshot. Exhibits unrepeatable and phantom reads.
	ReadCommitted = core.ReadCommitted
)

// Conflict policies for snapshot isolation.
const (
	// FirstUpdaterWins aborts the second concurrent updater immediately.
	FirstUpdaterWins = core.FirstUpdaterWins
	// FirstCommitterWins aborts the conflicting transaction at commit.
	FirstCommitterWins = core.FirstCommitterWins
)

// Garbage collector modes.
const (
	// GCThreaded collects through the global timestamp-sorted version
	// list: cost proportional to garbage (the paper's design).
	GCThreaded = core.GCThreaded
	// GCVacuum scans all version chains (the PostgreSQL-style baseline).
	GCVacuum = core.GCVacuum
)

// Errors. Use errors.Is: operations wrap these with context.
var (
	ErrNotFound      = core.ErrNotFound
	ErrWriteConflict = core.ErrWriteConflict
	ErrDeadlock      = core.ErrDeadlock
	ErrTxDone        = core.ErrTxDone
	ErrHasRels       = core.ErrHasRels
	ErrClosed        = core.ErrClosed
)

// NodeID identifies a node; RelID a relationship.
type (
	NodeID = uint64
	RelID  = uint64
)

// Options configure Open.
type Options struct {
	// Dir is the on-disk location of the database. Empty means in-memory.
	Dir string
	// Isolation is the default level for Begin. Zero value is
	// SnapshotIsolation.
	Isolation core.IsolationLevel
	// Conflict selects the SI write-conflict policy. Zero value is
	// FirstUpdaterWins.
	Conflict core.ConflictPolicy
	// DisableSyncCommits skips the commit WAL fsync entirely (durability
	// traded for throughput; the default is durable). This also bypasses
	// the group-commit batcher.
	DisableSyncCommits bool
	// DisableGroupCommit reverts to one fsync per committing transaction
	// instead of the default batched group commit — the before/after
	// baseline for throughput comparisons.
	DisableGroupCommit bool
	// CommitMaxBatch is the group-commit linger cutoff: the flush leader
	// stops waiting out CommitMaxDelay once this many committers are
	// queued. Zero picks the default (256); no effect when CommitMaxDelay
	// is zero.
	CommitMaxBatch int
	// CommitMaxDelay lets the group-commit flush leader wait this long for
	// more committers to join its batch before issuing the fsync. Zero
	// flushes immediately; commits arriving during an in-flight fsync
	// still coalesce into the next one.
	CommitMaxDelay time.Duration
	// GCMode selects the version collector. Zero value is GCThreaded.
	GCMode core.GCMode
	// GCInterval runs the collector periodically; zero means GC runs only
	// via RunGC.
	GCInterval time.Duration
	// CheckpointInterval drives background write-back of committed
	// versions to the store; zero means Checkpoint must be called.
	CheckpointInterval time.Duration
	// CachePages is the page-cache capacity per store file (advanced).
	CachePages int
}

// DB is a neograph database handle, safe for concurrent use.
type DB struct {
	e *core.Engine
}

// Open opens (creating or recovering as needed) a database.
func Open(opts Options) (*DB, error) {
	e, err := core.Open(core.Options{
		Dir:              opts.Dir,
		DefaultIsolation: opts.Isolation,
		Conflict:         opts.Conflict,
		NoSyncCommits:    opts.DisableSyncCommits,
		NoGroupCommit:    opts.DisableGroupCommit,
		CommitMaxBatch:   opts.CommitMaxBatch,
		CommitMaxDelay:   opts.CommitMaxDelay,
		GCMode:           opts.GCMode,
		GCEvery:          opts.GCInterval,
		CheckpointEvery:  opts.CheckpointInterval,
		StoreCachePages:  opts.CachePages,
	})
	if err != nil {
		return nil, err
	}
	return &DB{e: e}, nil
}

// Close checkpoints and closes the database.
func (db *DB) Close() error { return db.e.Close() }

// Begin starts a transaction at the database's default isolation level.
func (db *DB) Begin() *Tx { return &Tx{t: db.e.Begin()} }

// BeginIsolation starts a transaction at an explicit isolation level.
func (db *DB) BeginIsolation(level core.IsolationLevel) *Tx {
	return &Tx{t: db.e.BeginWith(core.TxOptions{Isolation: level})}
}

// Update runs fn in a transaction, committing on nil and aborting on
// error. Write-write conflicts and deadlocks are retried up to maxRetries
// times with jittered exponential backoff — the canonical SI usage
// pattern: the aborted loser is simply re-run on a fresh snapshot.
func (db *DB) Update(maxRetries int, fn func(*Tx) error) error {
	backoff := 50 * time.Microsecond
	for attempt := 0; ; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, ErrWriteConflict) && !errors.Is(err, ErrDeadlock) {
			return err
		}
		if attempt >= maxRetries {
			return err
		}
		time.Sleep(time.Duration(rand.Int63n(int64(backoff))) + backoff/2)
		if backoff < 10*time.Millisecond {
			backoff *= 2
		}
	}
}

// View runs fn in a read-only snapshot transaction (always aborted — a
// snapshot read has nothing to commit).
func (db *DB) View(fn func(*Tx) error) error {
	tx := db.Begin()
	defer tx.Abort()
	return fn(tx)
}

// RunGC performs one garbage collection cycle and returns its report.
func (db *DB) RunGC() core.GCReport { return db.e.RunGC() }

// Checkpoint writes the newest committed versions back to the store and
// prunes the WAL.
func (db *DB) Checkpoint() error { return db.e.Checkpoint() }

// Stats returns cumulative engine counters.
func (db *DB) Stats() core.Stats { return db.e.Stats() }

// VersionCount reports (versions, entities) held in the object cache.
func (db *DB) VersionCount() (int, int) { return db.e.VersionCount() }

// VersionBytes estimates the memory held by version payloads.
func (db *DB) VersionBytes() int { return db.e.VersionBytes() }

// GCBacklog reports versions awaiting threaded collection.
func (db *DB) GCBacklog() int { return db.e.GCBacklog() }

// Watermark returns the newest stable commit timestamp.
func (db *DB) Watermark() uint64 { return db.e.Watermark() }

// Engine exposes the underlying engine for advanced uses (the bench
// harness reads store file sizes through it).
func (db *DB) Engine() *core.Engine { return db.e }
