// Package neograph is an embedded graph database with snapshot isolation,
// reproducing "Snapshot Isolation for Neo4j" (Patiño-Martínez et al.,
// EDBT 2016).
//
// The data model is Neo4j's: nodes and relationships (edges) with typed
// properties; nodes additionally carry labels. Transactions run under
// snapshot isolation by default — every read observes the committed state
// as of the transaction's start, writes are private until commit, and
// write-write conflicts between concurrent transactions abort the second
// updater (first-updater-wins). Neo4j's native read committed level is
// available as a baseline, as is a first-committer-wins conflict policy.
//
// Quick start:
//
//	db, err := neograph.Open(neograph.Options{Dir: "/tmp/mygraph"})
//	if err != nil { ... }
//	defer db.Close()
//
//	tx := db.Begin()
//	alice, _ := tx.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("alice")})
//	bob, _ := tx.CreateNode([]string{"Person"}, neograph.Props{"name": neograph.String("bob")})
//	tx.CreateRel("KNOWS", alice, bob, nil)
//	if err := tx.Commit(); err != nil { ... }
//
// Opening with an empty Dir gives a purely in-memory database (no WAL, no
// store files) — useful for tests and benchmarks.
//
// # Durability
//
// A nil return from Commit means the transaction's redo record has been
// fsynced to the write-ahead log (unless DisableSyncCommits is set) and
// will be replayed after a crash. Concurrent committers share fsyncs
// through a group-commit batcher — see Options.CommitMaxBatch,
// Options.CommitMaxDelay and Options.DisableGroupCommit — so multi-writer
// commit throughput is not bounded by one disk flush per transaction.
package neograph

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"neograph/internal/core"
	"neograph/internal/faultfs"
	"neograph/internal/repl"
	"neograph/internal/slog"
	"neograph/internal/trace"
)

// Isolation levels for transactions.
const (
	// SnapshotIsolation (default): reads from a stable snapshot, no read
	// locks, first-updater-wins write-write conflict detection.
	SnapshotIsolation = core.SnapshotIsolation
	// ReadCommitted: Neo4j's native level — short read locks, long write
	// locks, no snapshot. Exhibits unrepeatable and phantom reads.
	ReadCommitted = core.ReadCommitted
)

// Conflict policies for snapshot isolation.
const (
	// FirstUpdaterWins aborts the second concurrent updater immediately.
	FirstUpdaterWins = core.FirstUpdaterWins
	// FirstCommitterWins aborts the conflicting transaction at commit.
	FirstCommitterWins = core.FirstCommitterWins
)

// Garbage collector modes.
const (
	// GCThreaded collects through the global timestamp-sorted version
	// list: cost proportional to garbage (the paper's design).
	GCThreaded = core.GCThreaded
	// GCVacuum scans all version chains (the PostgreSQL-style baseline).
	GCVacuum = core.GCVacuum
)

// Errors. Use errors.Is: operations wrap these with context.
var (
	ErrNotFound      = core.ErrNotFound
	ErrWriteConflict = core.ErrWriteConflict
	ErrDeadlock      = core.ErrDeadlock
	ErrTxDone        = core.ErrTxDone
	ErrHasRels       = core.ErrHasRels
	ErrClosed        = core.ErrClosed
	// ErrReadOnlyReplica rejects writes on a database opened with
	// ReplicaOf: writes must go to the primary.
	ErrReadOnlyReplica = core.ErrReadOnlyReplica
)

// NodeID identifies a node; RelID a relationship.
type (
	NodeID = uint64
	RelID  = uint64
)

// Options configure Open.
type Options struct {
	// Dir is the on-disk location of the database. Empty means in-memory.
	Dir string
	// Isolation is the default level for Begin. Zero value is
	// SnapshotIsolation.
	Isolation core.IsolationLevel
	// Conflict selects the SI write-conflict policy. Zero value is
	// FirstUpdaterWins.
	Conflict core.ConflictPolicy
	// DisableSyncCommits skips the commit WAL fsync entirely (durability
	// traded for throughput; the default is durable). This also bypasses
	// the group-commit batcher.
	DisableSyncCommits bool
	// DisableGroupCommit reverts to one fsync per committing transaction
	// instead of the default batched group commit — the before/after
	// baseline for throughput comparisons.
	DisableGroupCommit bool
	// CommitMaxBatch is the group-commit linger cutoff: the flush leader
	// stops waiting out CommitMaxDelay once this many committers are
	// queued. Zero picks the default (256); no effect when CommitMaxDelay
	// is zero.
	CommitMaxBatch int
	// CommitMaxDelay lets the group-commit flush leader wait this long for
	// more committers to join its batch before issuing the fsync. Zero
	// flushes immediately; commits arriving during an in-flight fsync
	// still coalesce into the next one.
	CommitMaxDelay time.Duration
	// CommitStripes shards the engine's object map, adjacency structure
	// and first-committer-wins commit validation into this many stripes
	// (rounded up to a power of two, capped at 256), so commits with
	// disjoint write footprints validate and install in parallel. Zero
	// picks the default (GOMAXPROCS rounded up to a power of two); 1
	// restores a single global validation latch (the pre-striping
	// behaviour, useful for debugging).
	CommitStripes int
	// GCMode selects the version collector. Zero value is GCThreaded.
	GCMode core.GCMode
	// GCInterval runs the collector periodically; zero means GC runs only
	// via RunGC.
	GCInterval time.Duration
	// CheckpointInterval drives background write-back of committed
	// versions to the store; zero means Checkpoint must be called.
	CheckpointInterval time.Duration
	// CachePages is the page-cache capacity per store file (advanced).
	CachePages int
	// ReplicaOf opens the database as a read-only replica streaming the
	// WAL from the primary's replication address (see ReplicationAddr).
	// The replica serves snapshot-isolated reads at its applied position;
	// writes fail with ErrReadOnlyReplica. Requires Dir.
	ReplicaOf string
	// ReplicationAddr, on a primary, listens on this address and streams
	// the WAL to any number of replicas (":0" picks a free port —
	// ReplicationAddress reports it). Requires Dir.
	ReplicationAddr string
	// SyncReplicas makes replication synchronous: a commit is
	// acknowledged only after this many replicas have durably acked its
	// WAL position, so promoting any in-quorum replica after a primary
	// crash loses no acknowledged commit. Zero (the default) keeps
	// replication asynchronous. Applies to the shipper started by
	// ReplicationAddr or by Promote.
	SyncReplicas int
	// SyncReplicaTimeout is the degrade-to-async window for SyncReplicas:
	// a commit that cannot assemble its quorum this long is acknowledged
	// anyway (and counted in ReplStatus.DegradedCommits) so a primary
	// whose replicas died stays available. Zero means 1s; negative waits
	// forever.
	SyncReplicaTimeout time.Duration
	// WALSegmentSize overrides the WAL segment rotation size (testing and
	// replication experiments; zero = 16 MiB default).
	WALSegmentSize int64
	// FS, when non-nil, routes every file operation (store, WAL, epoch,
	// snapshot re-seed) through the given filesystem — the fault-injection
	// seam used by crash tests. Nil uses the OS.
	FS faultfs.FS
	// Tracer, when non-nil, records commit-pipeline span trees for traced
	// transactions (see Tx.SetTraceSpan): per-stripe validation, WAL
	// append and group fsync, the sync-replication quorum wait, and — on
	// a replica fed by this primary — the replicated apply, all under the
	// trace ID the caller minted. Nil disables engine-side tracing.
	Tracer *trace.Tracer
	// Logger receives the replication endpoints' structured log records
	// (connection state changes, stream refusals). Nil is silent.
	Logger *slog.Logger
	// PartitionID / PartitionCount place this database in a hash-
	// partitioned cluster: it owns node and relationship IDs where
	// id % PartitionCount == PartitionID and allocates only those.
	// PartitionCount <= 1 means unpartitioned (the default).
	PartitionID    int
	PartitionCount int
}

// DB is a neograph database handle, safe for concurrent use.
type DB struct {
	// e is swapped atomically by ReseedFrom, which closes the engine,
	// replaces the data dir with a snapshot, and reopens. Readers racing
	// a re-seed observe either engine; operations on the closed one fail
	// with ErrClosed and are retried by their callers.
	e atomic.Pointer[core.Engine]

	// opts remembers the Open configuration so ReseedFrom can reopen the
	// engine over the re-seeded dir with identical settings.
	opts Options

	// replMu guards the replication endpoints, which Promote swaps at
	// runtime (applier down, shipper up).
	replMu   sync.Mutex
	applier  *repl.Applier       // replica mode: the stream applier
	shipper  *repl.Shipper       // primary mode: the WAL shipper
	shipOpts repl.ShipperOptions // shipper tuning, reused by Promote
	logger   *slog.Logger        // replication endpoint logger, reused by Promote
	// promoted records a successful engine promotion in this process, so
	// a Promote whose shipper failed to bind (port still in use) can be
	// retried to start shipping instead of wedging as "not a replica".
	promoted bool
	// replStopped is set by Close/Crash teardown; a Promote losing that
	// race must fail rather than install a shipper nobody will close.
	replStopped bool
}

// repl snapshots the current replication endpoints.
func (db *DB) repl() (*repl.Applier, *repl.Shipper) {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.applier, db.shipper
}

// eng returns the current engine (swapped atomically by ReseedFrom).
func (db *DB) eng() *core.Engine { return db.e.Load() }

// coreOptions maps Options onto the engine's configuration. replica
// overrides the role — ReseedFrom reopens a demoted ex-primary's engine
// in replica mode regardless of how the process was started.
func coreOptions(opts Options, replica bool) core.Options {
	return core.Options{
		Dir:              opts.Dir,
		DefaultIsolation: opts.Isolation,
		Conflict:         opts.Conflict,
		NoSyncCommits:    opts.DisableSyncCommits,
		NoGroupCommit:    opts.DisableGroupCommit,
		CommitMaxBatch:   opts.CommitMaxBatch,
		CommitMaxDelay:   opts.CommitMaxDelay,
		CommitStripes:    opts.CommitStripes,
		GCMode:           opts.GCMode,
		GCEvery:          opts.GCInterval,
		CheckpointEvery:  opts.CheckpointInterval,
		StoreCachePages:  opts.CachePages,
		Replica:          replica,
		WALSegmentSize:   opts.WALSegmentSize,
		FS:               opts.FS,
		Tracer:           opts.Tracer,
		PartitionID:      opts.PartitionID,
		PartitionCount:   opts.PartitionCount,
	}
}

// Open opens (creating or recovering as needed) a database.
func Open(opts Options) (*DB, error) {
	if opts.ReplicaOf != "" && opts.ReplicationAddr != "" {
		return nil, errors.New("neograph: cascading replication (ReplicaOf + ReplicationAddr) is not supported")
	}
	if (opts.ReplicaOf != "" || opts.ReplicationAddr != "") && opts.Dir == "" {
		return nil, errors.New("neograph: replication requires a persistent Dir")
	}
	e, err := core.Open(coreOptions(opts, opts.ReplicaOf != ""))
	if err != nil {
		return nil, err
	}
	db := &DB{opts: opts, logger: opts.Logger, shipOpts: repl.ShipperOptions{
		SyncReplicas: opts.SyncReplicas,
		SyncTimeout:  opts.SyncReplicaTimeout,
		Logger:       opts.Logger,
	}}
	db.e.Store(e)
	if opts.ReplicaOf != "" {
		a, err := repl.NewApplier(e, opts.ReplicaOf, repl.ApplierOptions{Logger: opts.Logger})
		if err != nil {
			e.Close()
			return nil, err
		}
		a.Start()
		db.applier = a
	}
	if opts.ReplicationAddr != "" {
		s, err := repl.NewShipper(e, opts.ReplicationAddr, db.shipOpts)
		if err != nil {
			e.Close()
			return nil, err
		}
		db.shipper = s
	}
	return db, nil
}

// Promote turns a replica into a writable primary: the stream applier is
// stopped, the applied WAL tail is sealed, the replication epoch is
// bumped (fencing the old primary out of the new timeline), and local
// write commits are accepted from here on. When replicationAddr is
// non-empty a WAL shipper is started there — typically the dead
// primary's replication address — so surviving replicas can re-point (or
// simply reconnect) and follow the promoted node. SyncReplicas from Open
// carries over to the new shipper.
func (db *DB) Promote(replicationAddr string) error {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replStopped {
		return errors.New("neograph: promote: database closed")
	}
	switch {
	case db.applier != nil:
		db.applier.Close()
		if err := db.eng().Promote(); err != nil {
			// The engine is still a replica; restart the applier rather
			// than leave the node following nothing.
			a, aerr := repl.NewApplier(db.eng(), db.applier.Status().PrimaryAddr, repl.ApplierOptions{Logger: db.logger})
			if aerr == nil {
				a.Start()
				db.applier = a
			}
			return err
		}
		db.applier = nil
		db.promoted = true
	case db.promoted && db.shipper == nil && replicationAddr != "":
		// Retry path: an earlier Promote flipped the engine but its
		// shipper failed to bind (e.g. the dead primary's port was still
		// held). Fall through to start shipping now; without an address
		// a repeated promote is an error like any other, not a silent OK.
	default:
		return errors.New("neograph: promote: not a replica")
	}
	if replicationAddr != "" && db.shipper == nil {
		s, err := repl.NewShipper(db.eng(), replicationAddr, db.shipOpts)
		if err != nil {
			return fmt.Errorf("neograph: promoted but cannot ship (retry Promote once the address frees): %w", err)
		}
		db.shipper = s
	}
	return nil
}

// Retarget points a replica's stream applier at a different primary —
// the fleet-rewire step after a failover: survivors of the dead primary
// re-target the promoted node and resume the stream from their own log
// end. A no-op when already following primaryReplAddr.
func (db *DB) Retarget(primaryReplAddr string) error {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replStopped {
		return errors.New("neograph: retarget: database closed")
	}
	if db.applier == nil {
		return errors.New("neograph: retarget: not a replica")
	}
	prev := db.applier.Status().PrimaryAddr
	if prev == primaryReplAddr {
		return nil
	}
	db.applier.Close()
	a, err := repl.NewApplier(db.eng(), primaryReplAddr, repl.ApplierOptions{Logger: db.logger})
	if err != nil {
		// The engine is still a replica; re-point at the old primary
		// rather than leave the node following nothing.
		if a2, aerr := repl.NewApplier(db.eng(), prev, repl.ApplierOptions{Logger: db.logger}); aerr == nil {
			a2.Start()
			db.applier = a2
		}
		return fmt.Errorf("neograph: retarget: %w", err)
	}
	a.Start()
	db.applier = a
	return nil
}

// ReseedFrom rebuilds this node from a snapshot fetched off the given
// primary's replication address, then rejoins its stream as a replica.
// It is the automatic answer to "re-seed required": the local engine is
// closed, the data dir is replaced by a consistent checkpoint + WAL tail
// (crash-safe — see repl.FetchSnapshot), and a fresh replica engine
// opens over it and starts applying. It also demotes: a stale primary
// that lost a double-claim race re-seeds from the winner and comes back
// as its replica.
func (db *DB) ReseedFrom(primaryReplAddr string) error {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replStopped {
		return errors.New("neograph: reseed: database closed")
	}
	if db.opts.Dir == "" {
		return errors.New("neograph: reseed requires a persistent Dir")
	}
	if db.applier != nil {
		db.applier.Close()
		db.applier = nil
	}
	if db.shipper != nil {
		db.shipper.Close()
		db.shipper = nil
	}
	old := db.eng()
	old.Crash() // no flush — the dir is about to be replaced wholesale

	restart := func() (*repl.Applier, error) {
		e, err := core.Open(coreOptions(db.opts, true))
		if err != nil {
			return nil, err
		}
		db.e.Store(e)
		db.promoted = false
		a, err := repl.NewApplier(e, primaryReplAddr, repl.ApplierOptions{Logger: db.logger})
		if err != nil {
			return nil, err
		}
		a.Start()
		db.applier = a
		return a, nil
	}

	if _, err := repl.FetchSnapshot(db.opts.Dir, db.opts.FS, primaryReplAddr, repl.FetchOptions{Logger: db.logger}); err != nil {
		// A fetch that never reached its destructive phase left the old
		// dir intact — reopen it so the node keeps serving and the
		// controller can retry. A dir poisoned mid-swap (marker present)
		// refuses to open; only another ReseedFrom can heal it.
		if _, rerr := restart(); rerr != nil {
			return fmt.Errorf("neograph: reseed: %w (and reopen failed: %v)", err, rerr)
		}
		return fmt.Errorf("neograph: reseed: %w", err)
	}
	if _, err := restart(); err != nil {
		return fmt.Errorf("neograph: reseed: reopen: %w", err)
	}
	return nil
}

// Close stops replication, checkpoints and closes the database.
func (db *DB) Close() error {
	db.stopRepl()
	return db.eng().Close()
}

// Crash simulates a process crash for recovery and failover tests:
// replication endpoints are torn down and files are closed without
// flushing caches (see Engine.Crash).
func (db *DB) Crash() error {
	db.stopRepl()
	return db.eng().Crash()
}

// stopRepl tears down the replication endpoints under replMu, so a
// concurrent Promote either completes first (its shipper is closed
// here) or observes replStopped and fails — never installs a shipper
// that outlives the database.
func (db *DB) stopRepl() {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	db.replStopped = true
	if db.applier != nil {
		db.applier.Close()
		db.applier = nil
	}
	if db.shipper != nil {
		db.shipper.Close()
		db.shipper = nil
	}
}

// Begin starts a transaction at the database's default isolation level.
func (db *DB) Begin() *Tx { return &Tx{t: db.eng().Begin()} }

// BeginIsolation starts a transaction at an explicit isolation level.
func (db *DB) BeginIsolation(level core.IsolationLevel) *Tx {
	return &Tx{t: db.eng().BeginWith(core.TxOptions{Isolation: level})}
}

// Update runs fn in a transaction, committing on nil and aborting on
// error. Write-write conflicts and deadlocks are retried up to maxRetries
// times with jittered exponential backoff — the canonical SI usage
// pattern: the aborted loser is simply re-run on a fresh snapshot.
func (db *DB) Update(maxRetries int, fn func(*Tx) error) error {
	backoff := 50 * time.Microsecond
	for attempt := 0; ; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !errors.Is(err, ErrWriteConflict) && !errors.Is(err, ErrDeadlock) {
			return err
		}
		if attempt >= maxRetries {
			return err
		}
		time.Sleep(time.Duration(rand.Int63n(int64(backoff))) + backoff/2)
		if backoff < 10*time.Millisecond {
			backoff *= 2
		}
	}
}

// View runs fn in a read-only snapshot transaction (always aborted — a
// snapshot read has nothing to commit).
func (db *DB) View(fn func(*Tx) error) error {
	tx := db.Begin()
	defer tx.Abort()
	return fn(tx)
}

// RunGC performs one garbage collection cycle and returns its report.
func (db *DB) RunGC() core.GCReport { return db.eng().RunGC() }

// Checkpoint writes the newest committed versions back to the store and
// prunes the WAL.
func (db *DB) Checkpoint() error { return db.eng().Checkpoint() }

// Stats returns cumulative engine counters.
func (db *DB) Stats() core.Stats { return db.eng().Stats() }

// VersionCount reports (versions, entities) held in the object cache.
func (db *DB) VersionCount() (int, int) { return db.eng().VersionCount() }

// VersionBytes estimates the memory held by version payloads.
func (db *DB) VersionBytes() int { return db.eng().VersionBytes() }

// GCBacklog reports versions awaiting threaded collection.
func (db *DB) GCBacklog() int { return db.eng().GCBacklog() }

// Watermark returns the newest stable commit timestamp.
func (db *DB) Watermark() uint64 { return db.eng().Watermark() }

// ---- replication ----

// ReplStatus describes a database's replication role and progress.
type ReplStatus struct {
	// Role is "primary" (shipping its WAL), "replica", or "standalone".
	Role string `json:"role"`
	// DurableLSN is the local WAL durability horizon (end position).
	DurableLSN uint64 `json:"durable_lsn"`
	// AppliedLSN is one past the last WAL record held locally; on a
	// replica, how much of the primary's log has been applied.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Replica-side details (Role == "replica").
	PrimaryAddr    string `json:"primary_addr,omitempty"`
	Connected      bool   `json:"connected,omitempty"`
	PrimaryDurable uint64 `json:"primary_durable,omitempty"`
	// LagSeconds is how long this replica has continuously been behind
	// the primary's durability horizon (0 when caught up).
	LagSeconds float64 `json:"lag_seconds,omitempty"`
	LastError  string  `json:"last_error,omitempty"`
	// ReseedRequired reports that this replica's log can never resume
	// the stream (diverged past a fork point, behind the primary's
	// retained WAL, or conflicting epoch histories); ReseedFrom — or the
	// cluster controller — must rebuild it from a snapshot.
	ReseedRequired bool `json:"reseed_required,omitempty"`
	// Primary-side details (Role == "primary").
	ReplicationAddr string             `json:"replication_addr,omitempty"`
	Replicas        []repl.ReplicaInfo `json:"replicas,omitempty"`
	// SyncReplicas is the configured commit quorum (0 = async);
	// DegradedCommits counts commits acknowledged without that quorum
	// because the degrade timeout elapsed.
	SyncReplicas    int    `json:"sync_replicas,omitempty"`
	DegradedCommits uint64 `json:"degraded_commits,omitempty"`
	// Epoch is the replication generation; a promotion bumps it.
	Epoch uint64 `json:"epoch,omitempty"`
}

// IsReplica reports whether the database is currently a replica (opened
// with ReplicaOf and not promoted).
func (db *DB) IsReplica() bool {
	a, _ := db.repl()
	return a != nil
}

// PrimaryAddr returns the primary's replication address on a replica.
func (db *DB) PrimaryAddr() string {
	a, _ := db.repl()
	if a == nil {
		return ""
	}
	return a.Status().PrimaryAddr
}

// ReplicationAddress returns the bound WAL-shipping address on a primary
// (useful with ReplicationAddr ":0").
func (db *DB) ReplicationAddress() string {
	_, s := db.repl()
	if s == nil {
		return ""
	}
	return s.Addr()
}

// Epoch returns the node's replication epoch — the generation counter a
// promotion bumps — and the WAL position at which that epoch began.
func (db *DB) Epoch() (epoch, startLSN uint64) { return db.eng().Epoch() }

// ReplStatus snapshots replication state for status endpoints.
func (db *DB) ReplStatus() ReplStatus {
	st := ReplStatus{
		Role:       "standalone",
		DurableLSN: db.eng().DurableLSN(),
		AppliedLSN: db.eng().AppliedLSN(),
	}
	st.Epoch, _ = db.eng().Epoch()
	db.replMu.Lock()
	a, s, promoted := db.applier, db.shipper, db.promoted
	db.replMu.Unlock()
	switch {
	case a != nil:
		as := a.Status()
		st.Role = "replica"
		st.PrimaryAddr = as.PrimaryAddr
		st.Connected = as.Connected
		st.PrimaryDurable = as.PrimaryDurable
		st.LagSeconds = as.LagSeconds
		st.LastError = as.LastError
		st.ReseedRequired = as.ReseedRequired
	case s != nil:
		st.Role = "primary"
		st.ReplicationAddr = s.Addr()
		st.Replicas = s.Replicas()
		st.SyncReplicas = db.shipOpts.SyncReplicas
		st.DegradedCommits = s.Degraded()
	case promoted:
		// Promoted without a shipper (Promote("")): still a writable
		// primary — the runbook's "role flips to primary" must hold even
		// before shipping starts.
		st.Role = "primary"
	}
	return st
}

// DurableLSN returns the WAL durability horizon (an end position).
func (db *DB) DurableLSN() uint64 { return db.eng().DurableLSN() }

// AppliedLSN returns one past the last WAL record held locally.
func (db *DB) AppliedLSN() uint64 { return db.eng().AppliedLSN() }

// WaitDurable blocks until the WAL durability horizon reaches pos — the
// opt-in read gate for callers that must not act on a commit a crash
// could still erase. Pass a Tx.CommitLSN token; zero returns immediately.
func (db *DB) WaitDurable(pos uint64) error { return db.eng().WaitDurable(pos) }

// WaitApplied blocks until this replica has applied the primary's log up
// to pos (a Tx.CommitLSN token from the primary) — the read-your-writes
// gate. A zero timeout waits indefinitely. On a non-replica it falls
// back to WaitDurable: the local log *is* the source of truth there.
func (db *DB) WaitApplied(pos uint64, timeout time.Duration) error {
	a, _ := db.repl()
	if a == nil {
		return db.eng().WaitDurable(pos)
	}
	return a.WaitApplied(pos, timeout)
}

// Engine exposes the underlying engine for advanced uses (the bench
// harness reads store file sizes through it).
func (db *DB) Engine() *core.Engine { return db.eng() }
