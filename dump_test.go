package neograph

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := memDB(t)
	var a, b, c NodeID
	err := src.Update(0, func(tx *Tx) error {
		var err error
		a, err = tx.CreateNode([]string{"Person"}, Props{
			"name":  String("ada"),
			"big":   Int(math.MaxInt64),
			"score": Float(2.5),
			"raw":   Bytes([]byte{0, 255}),
			"tags":  List(String("x"), Int(1)),
		})
		if err != nil {
			return err
		}
		b, _ = tx.CreateNode([]string{"Person", "Admin"}, nil)
		c, _ = tx.CreateNode(nil, Props{"k": Bool(true)})
		tx.CreateRel("KNOWS", a, b, Props{"since": Int(2016)})
		tx.CreateRel("MANAGES", b, c, nil)
		tx.CreateRel("SELF", c, c, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = src.View(func(tx *Tx) error { return Export(tx, &buf) })
	if err != nil {
		t.Fatal(err)
	}

	dst := memDB(t)
	stats, err := Import(dst, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 3 || stats.Rels != 3 {
		t.Fatalf("stats = %+v", stats)
	}

	dst.View(func(tx *Tx) error {
		people, _ := tx.NodesByLabel("Person")
		if len(people) != 2 {
			t.Fatalf("people = %v", people)
		}
		adas, _ := tx.NodesByProperty("name", String("ada"))
		if len(adas) != 1 {
			t.Fatalf("adas = %v", adas)
		}
		n, _ := tx.GetNode(adas[0])
		if v, _ := n.Props["big"].AsInt(); v != math.MaxInt64 {
			t.Fatalf("int precision lost: %d", v)
		}
		if v, _ := n.Props["raw"].AsBytes(); !reflect.DeepEqual(v, []byte{0, 255}) {
			t.Fatalf("bytes lost: %v", v)
		}
		// Topology: ada -KNOWS-> admin -MANAGES-> k.
		knows, _ := tx.Relationships(adas[0], Outgoing, "KNOWS")
		if len(knows) != 1 {
			t.Fatalf("knows = %v", knows)
		}
		if s, _ := knows[0].Props["since"].AsInt(); s != 2016 {
			t.Fatalf("rel props lost: %v", knows[0].Props)
		}
		manages, _ := tx.Relationships(knows[0].End, Outgoing, "MANAGES")
		if len(manages) != 1 {
			t.Fatalf("manages = %v", manages)
		}
		self, _ := tx.Relationships(manages[0].End, Both, "SELF")
		if len(self) != 1 || self[0].Start != self[0].End {
			t.Fatalf("self loop lost: %v", self)
		}
		return nil
	})
}

func TestImportIntoNonEmptyDB(t *testing.T) {
	src := memDB(t)
	src.Update(0, func(tx *Tx) error {
		a, _ := tx.CreateNode([]string{"X"}, nil)
		b, _ := tx.CreateNode([]string{"X"}, nil)
		tx.CreateRel("E", a, b, nil)
		return nil
	})
	var buf bytes.Buffer
	src.View(func(tx *Tx) error { return Export(tx, &buf) })

	dst := memDB(t)
	// Pre-existing data occupies the low IDs the dump also uses.
	dst.Update(0, func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			tx.CreateNode([]string{"Old"}, nil)
		}
		return nil
	})
	stats, err := Import(dst, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 2 || stats.Rels != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	dst.View(func(tx *Tx) error {
		olds, _ := tx.NodesByLabel("Old")
		xs, _ := tx.NodesByLabel("X")
		if len(olds) != 5 || len(xs) != 2 {
			t.Fatalf("olds=%v xs=%v", olds, xs)
		}
		rels, _ := tx.Relationships(xs[0], Both)
		if len(rels) != 1 {
			t.Fatalf("imported topology broken: %v", rels)
		}
		return nil
	})
}

func TestImportErrors(t *testing.T) {
	db := memDB(t)
	if _, err := Import(db, strings.NewReader(`{"kind":"banana"}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Import(db, strings.NewReader(`{"kind":"rel","id":1,"type":"E","start":99,"end":98}`)); err == nil {
		t.Fatal("dangling rel accepted")
	}
	if _, err := Import(db, strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestExportConsistentUnderWriters(t *testing.T) {
	db := memDB(t)
	var ids []NodeID
	db.Update(0, func(tx *Tx) error {
		for i := 0; i < 50; i++ {
			id, _ := tx.CreateNode([]string{"N"}, Props{"v": Int(0)})
			ids = append(ids, id)
		}
		return nil
	})
	// Export inside a transaction while a writer mutates mid-export: the
	// dump must reflect the snapshot (all v identical), not a torn mix.
	tx := db.Begin()
	defer tx.Abort()
	db.Update(0, func(w *Tx) error {
		for _, id := range ids {
			if err := w.SetNodeProp(id, "v", Int(42)); err != nil {
				return err
			}
		}
		return nil
	})
	var buf bytes.Buffer
	if err := Export(tx, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"42"`) {
		t.Fatal("export leaked post-snapshot values")
	}
}
