package neograph

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := memDB(t)
	var alice, bob NodeID
	err := db.Update(0, func(tx *Tx) error {
		var err error
		alice, err = tx.CreateNode([]string{"Person"}, Props{"name": String("alice")})
		if err != nil {
			return err
		}
		bob, err = tx.CreateNode([]string{"Person"}, Props{"name": String("bob")})
		if err != nil {
			return err
		}
		_, err = tx.CreateRel("KNOWS", alice, bob, Props{"since": Int(2020)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(func(tx *Tx) error {
		people, err := tx.NodesByLabel("Person")
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(people, []NodeID{alice, bob}) {
			t.Errorf("people = %v", people)
		}
		nbrs, err := tx.Neighbors(alice, Outgoing, "KNOWS")
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(nbrs, []NodeID{bob}) {
			t.Errorf("neighbors = %v", nbrs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRetriesConflicts(t *testing.T) {
	db := memDB(t)
	var id NodeID
	if err := db.Update(0, func(tx *Tx) error {
		var err error
		id, err = tx.CreateNode(nil, Props{"n": Int(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Hammer one counter from many goroutines with retries: every
	// increment must eventually land (no lost updates, no starvation with
	// a generous retry budget).
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				errs[w] = db.Update(1000, func(tx *Tx) error {
					n, err := tx.GetNode(id)
					if err != nil {
						return err
					}
					cur, _ := n.Props["n"].AsInt()
					return tx.SetNodeProp(id, "n", Int(cur+1))
				})
				if errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	db.View(func(tx *Tx) error {
		n, _ := tx.GetNode(id)
		if v, _ := n.Props["n"].AsInt(); v != workers*perWorker {
			t.Fatalf("counter = %d, want %d", v, workers*perWorker)
		}
		return nil
	})
}

func TestUpdateAbortsOnError(t *testing.T) {
	db := memDB(t)
	boom := errors.New("boom")
	var id NodeID
	err := db.Update(0, func(tx *Tx) error {
		id, _ = tx.CreateNode(nil, nil)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	db.View(func(tx *Tx) error {
		if ok, _ := tx.NodeExists(id); ok {
			t.Fatal("aborted create leaked")
		}
		return nil
	})
}

func TestIsolationLevelsExposed(t *testing.T) {
	db := memDB(t)
	var id NodeID
	db.Update(0, func(tx *Tx) error {
		id, _ = tx.CreateNode(nil, Props{"v": Int(1)})
		return nil
	})

	si := db.BeginIsolation(SnapshotIsolation)
	rc := db.BeginIsolation(ReadCommitted)
	defer si.Abort()
	defer rc.Abort()

	db.Update(0, func(tx *Tx) error { return tx.SetNodeProp(id, "v", Int(2)) })

	nSI, _ := si.GetNode(id)
	nRC, _ := rc.GetNode(id)
	vSI, _ := nSI.Props["v"].AsInt()
	vRC, _ := nRC.Props["v"].AsInt()
	if vSI != 1 {
		t.Fatalf("SI read %d, want snapshot value 1", vSI)
	}
	if vRC != 2 {
		t.Fatalf("RC read %d, want latest committed 2", vRC)
	}
}

func TestIteratorAPI(t *testing.T) {
	db := memDB(t)
	db.Update(0, func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.CreateNode([]string{"X"}, Props{"i": Int(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	db.View(func(tx *Tx) error {
		it, err := tx.IterateNodesByLabel("X")
		if err != nil {
			return err
		}
		count := 0
		for it.Next() {
			if !hasString(it.Node().Labels, "X") {
				t.Errorf("node %d missing label", it.Node().ID)
			}
			count++
		}
		if count != 5 {
			t.Fatalf("iterated %d, want 5", count)
		}
		return it.Err()
	})
}

func hasString(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func TestPersistentOpenClose(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var id NodeID
	db.Update(0, func(tx *Tx) error {
		id, _ = tx.CreateNode([]string{"Keep"}, Props{"k": String("v")})
		return nil
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		n, err := tx.GetNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := n.Props["k"].AsString(); v != "v" {
			t.Fatalf("props = %v", n.Props)
		}
		return nil
	})
}

func TestGCThroughPublicAPI(t *testing.T) {
	db := memDB(t)
	var id NodeID
	db.Update(0, func(tx *Tx) error {
		id, _ = tx.CreateNode(nil, Props{"v": Int(0)})
		return nil
	})
	for i := 0; i < 10; i++ {
		db.Update(0, func(tx *Tx) error { return tx.SetNodeProp(id, "v", Int(int64(i))) })
	}
	if db.GCBacklog() == 0 {
		t.Fatal("no GC backlog accumulated")
	}
	rep := db.RunGC()
	if rep.Collected == 0 {
		t.Fatal("GC collected nothing")
	}
	versions, _ := db.VersionCount()
	if versions != 1 {
		t.Fatalf("versions = %d", versions)
	}
}
