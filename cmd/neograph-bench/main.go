// Command neograph-bench runs the experiment suite from DESIGN.md and
// prints one table per experiment (the tables recorded in EXPERIMENTS.md).
//
// Usage:
//
//	neograph-bench                 # run everything at full size
//	neograph-bench -exp E4         # one experiment
//	neograph-bench -quick          # small, fast configurations
//	neograph-bench -json out.json  # also write structured results
//	neograph-bench -exp E11 -cpuprofile cpu.pprof  # profile a run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"neograph/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: E1..E16, E2d, F1 or all")
		quick    = flag.Bool("quick", false, "small configurations (seconds, not minutes)")
		seed     = flag.Int64("seed", 42, "workload seed")
		jsonPath = flag.String("json", "", "write structured results to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	// Profiles are finalised through exit() on every path — os.Exit would
	// otherwise skip deferred finalisers, truncating the CPU profile and
	// dropping the heap profile exactly when a failing run is the thing
	// worth profiling.
	profilesDone := false
	stopProfiles := func() {
		if profilesDone {
			return
		}
		profilesDone = true
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		if *memProf != "" {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	defer stopProfiles()

	w := os.Stdout
	scale := func(full, quick_ int) int {
		if *quick {
			return quick_
		}
		return full
	}
	dur := func(full, quick_ time.Duration) time.Duration {
		if *quick {
			return quick_
		}
		return full
	}

	// report accumulates each experiment's structured rows for -json.
	report := map[string]any{
		"quick": *quick,
		"seed":  *seed,
	}
	matched := 0
	run := func(id string, fn func() (any, error)) {
		if *exp != "all" && !strings.EqualFold(*exp, id) {
			return
		}
		matched++
		t0 := time.Now()
		rows, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			exit(1)
		}
		elapsed := time.Since(t0).Round(time.Millisecond)
		if rows != nil {
			report[id] = rows
		}
		fmt.Fprintf(w, "(%s completed in %v)\n", id, elapsed)
	}

	run("E1", func() (any, error) {
		return bench.RunE1(w, bench.E1Config{
			People:  scale(2000, 300),
			Writers: 8, Checkers: 4,
			Duration: dur(5*time.Second, 700*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E2", func() (any, error) {
		clients := []int{1, 2, 4, 8, 16, 32, 64}
		if *quick {
			clients = []int{1, 4, 16}
		}
		return bench.RunE2(w, bench.E2Config{
			People:   scale(5000, 500),
			Clients:  clients,
			Duration: dur(2*time.Second, 200*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E2d", func() (any, error) {
		clients := []int{1, 2, 8, 16, 32}
		if *quick {
			clients = []int{1, 8}
		}
		return bench.RunE2Durable(w, bench.E2DurableConfig{
			People:   scale(2000, 500),
			Clients:  clients,
			Duration: dur(2*time.Second, 500*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E3", func() (any, error) {
		return bench.RunE3(w, bench.E3Config{
			People:   scale(2000, 300),
			Clients:  16,
			Thetas:   []float64{0, 0.6, 0.9, 1.2},
			Duration: dur(2*time.Second, 300*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E4", func() (any, error) {
		live := []int{10_000, 100_000, 1_000_000}
		if *quick {
			live = []int{2_000, 20_000}
		}
		return bench.RunE4(w, bench.E4Config{
			LiveEntities:    live,
			GarbageVersions: scale(20_000, 2_000),
			Seed:            *seed,
		})
	})
	run("E5", func() (any, error) {
		return bench.RunE5(w, bench.E5Config{
			HotNodes:       scale(500, 100),
			UpdatesPerStep: scale(10_000, 500),
			Steps:          5,
			Seed:           *seed,
		})
	})
	run("E6", func() (any, error) {
		return bench.RunE6(w, bench.E6Config{
			Nodes:         scale(100_000, 10_000),
			Selectivities: []float64{0.001, 0.01, 0.1, 0.5},
			Lookups:       scale(50, 10),
			Seed:          *seed,
		})
	})
	run("E7", func() (any, error) {
		return bench.RunE7(w, bench.E7Config{
			BaseNodes:     scale(50_000, 2_000),
			WriteSetSizes: []int{0, 10, 100, 1_000, 10_000},
			Lookups:       scale(50, 10),
			Seed:          *seed,
		})
	})
	run("E8", func() (any, error) {
		return bench.RunE8(w, bench.E8Config{
			Entities:               scale(20_000, 1_000),
			UpdatesPerNode:         5,
			Seed:                   *seed,
			SyncedWriters:          8,
			SyncedCommitsPerWriter: scale(100, 25),
		})
	})
	run("E9", func() (any, error) {
		return bench.RunE9(w, bench.E9Config{
			Nodes:    scale(2_000, 400),
			Writers:  2,
			Replicas: []int{0, 1, 2},
			Duration: dur(2*time.Second, 500*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E10", func() (any, error) {
		return bench.RunE10(w, bench.E10Config{
			Commits:    scale(300, 60),
			Replicas:   2,
			SyncLevels: []int{0, 1, 2},
			Seed:       *seed,
		})
	})
	run("E11", func() (any, error) {
		clients := []int{1, 2, 4, 8, 16}
		if *quick {
			clients = []int{1, 2, 4, 8}
		}
		return bench.RunE11(w, bench.E11Config{
			Nodes:    scale(8192, 2048),
			Clients:  clients,
			Duration: dur(time.Second, 250*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E12", func() (any, error) {
		return bench.RunE12(w, bench.E12Config{
			Nodes:    scale(2_000, 400),
			Clients:  1, // per-session pipelining; see E12Config.Clients
			Depth:    8,
			Replicas: 2,
			Duration: dur(2*time.Second, 400*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E13", func() (any, error) {
		return bench.RunE13(w, bench.E13Config{
			People:   scale(2000, 500),
			Clients:  scale(16, 8),
			Duration: dur(2*time.Second, 500*time.Millisecond),
			Seed:     *seed,
		})
	})
	run("E14", func() (any, error) {
		return bench.RunE14(w, bench.E14Config{
			Nodes:     scale(120_000, 3_000),
			OutDegree: scale(8, 6),
			Starts:    scale(4, 2),
			Depth:     3,
			Seed:      *seed,
		})
	})
	run("E15", func() (any, error) {
		return bench.RunE15(w, bench.E15Config{
			PreCommits: scale(200, 40),
			SyncLevels: []int{0, 1},
			Seed:       *seed,
		})
	})
	run("E16", func() (any, error) {
		parts := []int{1, 2, 4}
		if *quick {
			parts = []int{1, 2}
		}
		return bench.RunE16(w, bench.E16Config{
			Partitions:          parts,
			CrossPcts:           []int{0, 10},
			ClientsPerPartition: scale(4, 4),
			AnchorsPerPartition: scale(256, 128),
			Duration:            dur(2*time.Second, 500*time.Millisecond),
			Seed:                *seed,
		})
	})
	run("F1", func() (any, error) {
		return nil, bench.RunF1(w, scale(5_000, 500), *seed)
	})

	if matched == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E16, E2d, F1 or all)\n", *exp)
		exit(2)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			exit(1)
		}
		fmt.Fprintf(w, "(results written to %s)\n", *jsonPath)
	}
}
