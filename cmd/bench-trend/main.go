// Command bench-trend normalises a bench-results.json (written by
// neograph-bench -json) into a small versioned trend file and compares
// its headline metrics against the newest committed baseline, failing on
// regression. It is the CI gate that turns the bench suite into a
// trajectory instead of a point:
//
//	make bench-smoke
//	go run ./cmd/bench-trend -in bench-results.json -dir . -sha $GITHUB_SHA
//
// The tool writes BENCH_<date>_<sha>.json next to the committed
// BENCH_*.json files and exits non-zero if any headline metric fell more
// than -threshold below the baseline (the lexically greatest BENCH_*.json,
// so the seed file BENCH_0001_seed.json naturally yields to dated ones).
// On merge, commit the newly written file to advance the baseline.
//
// -handicap divides every extracted metric before writing/comparing —
// a synthetic slowdown for verifying the gate actually fires:
//
//	go run ./cmd/bench-trend -in bench-results.json -handicap 2  # must fail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// trendFile is the normalised, committed shape. Metrics are
// higher-is-better throughput/speedup numbers only — latencies would
// need the comparison inverted.
type trendFile struct {
	Schema  int                `json:"schema"`
	Date    string             `json:"date"`
	SHA     string             `json:"sha"`
	Quick   bool               `json:"quick"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		in        = flag.String("in", "bench-results.json", "bench-results.json written by neograph-bench -json")
		dir       = flag.String("dir", ".", "directory holding committed BENCH_*.json baselines")
		out       = flag.String("out", "", "output trend file (default <dir>/BENCH_<date>_<sha>.json)")
		sha       = flag.String("sha", "", "commit id stamped into the file name and contents (default $GITHUB_SHA, else \"local\")")
		threshold = flag.Float64("threshold", 0.30, "relative drop that fails the gate (0.30 = 30%)")
		handicap  = flag.Float64("handicap", 1.0, "divide every metric by this (synthetic slowdown for gate verification)")
	)
	flag.Parse()

	if *sha == "" {
		*sha = os.Getenv("GITHUB_SHA")
	}
	if *sha == "" {
		*sha = "local"
	}
	short := *sha
	if len(short) > 12 {
		short = short[:12]
	}

	cur, err := extract(*in, *handicap)
	if err != nil {
		fatal("extract %s: %v", *in, err)
	}
	cur.SHA = short
	cur.Date = time.Now().UTC().Format("2006-01-02")

	if *out == "" {
		*out = filepath.Join(*dir, fmt.Sprintf("BENCH_%s_%s.json", strings.ReplaceAll(cur.Date, "-", ""), short))
	}

	base, basePath, err := latestBaseline(*dir, *out)
	if err != nil {
		fatal("baseline scan: %v", err)
	}

	if err := write(*out, cur); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s\n", *out)

	if base == nil {
		fmt.Println("no committed BENCH_*.json baseline; nothing to compare (commit this file to start the trajectory)")
		return
	}
	if base.Quick != cur.Quick {
		fmt.Printf("baseline %s is quick=%v but this run is quick=%v; skipping comparison (modes must match)\n",
			basePath, base.Quick, cur.Quick)
		return
	}

	fmt.Printf("comparing against %s (%s, %s)\n", basePath, base.Date, base.SHA)
	var failures []string
	names := make([]string, 0, len(cur.Metrics))
	for name := range cur.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := cur.Metrics[name]
		old, ok := base.Metrics[name]
		if !ok || old <= 0 {
			fmt.Printf("  %-34s %12.2f  (no baseline)\n", name, now)
			continue
		}
		delta := now/old - 1
		mark := ""
		if delta < -*threshold {
			mark = "  << REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s fell %.0f%% (%.2f -> %.2f, gate %.0f%%)", name, -delta*100, old, now, *threshold*100))
		}
		fmt.Printf("  %-34s %12.2f  vs %12.2f  (%+.1f%%)%s\n", name, now, old, delta*100, mark)
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "bench-trend: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("bench-trend: OK")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-trend: "+format+"\n", args...)
	os.Exit(2)
}

func write(path string, tf *trendFile) error {
	data, err := json.MarshalIndent(tf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// latestBaseline returns the lexically greatest BENCH_*.json in dir,
// excluding the file about to be written.
func latestBaseline(dir, exclude string) (*trendFile, string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(matches)
	exAbs, _ := filepath.Abs(exclude)
	for i := len(matches) - 1; i >= 0; i-- {
		mAbs, _ := filepath.Abs(matches[i])
		if mAbs == exAbs {
			continue
		}
		data, err := os.ReadFile(matches[i])
		if err != nil {
			return nil, "", err
		}
		var tf trendFile
		if err := json.Unmarshal(data, &tf); err != nil {
			return nil, "", fmt.Errorf("%s: %w", matches[i], err)
		}
		return &tf, matches[i], nil
	}
	return nil, "", nil
}

// extract pulls the headline higher-is-better metrics out of a raw
// bench-results.json. Experiments absent from the report (a partial -exp
// run) simply contribute no metric.
func extract(path string, handicap float64) (*trendFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report map[string]json.RawMessage
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, err
	}
	tf := &trendFile{Schema: 1, Metrics: map[string]float64{}}
	if raw, ok := report["quick"]; ok {
		_ = json.Unmarshal(raw, &tf.Quick)
	}
	if handicap <= 0 {
		handicap = 1
	}
	put := func(name string, v float64) {
		if v > 0 {
			tf.Metrics[name] = v / handicap
		}
	}

	// E2d: synced commits/s of group commit at the highest client count.
	if raw, ok := report["E2d"]; ok {
		var rows []struct {
			Mode    string
			Clients int
			Result  struct {
				Commits uint64
				Elapsed int64 // time.Duration marshals as ns
			}
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E2d: %w", err)
		}
		best := -1
		for i, r := range rows {
			if r.Mode == "group" && (best < 0 || r.Clients > rows[best].Clients) {
				best = i
			}
		}
		if best >= 0 && rows[best].Result.Elapsed > 0 {
			put("e2d_synced_commits_per_sec",
				float64(rows[best].Result.Commits)/(float64(rows[best].Result.Elapsed)/1e9))
		}
	}

	// E9: read-throughput speedup at the highest replica count.
	if raw, ok := report["E9"]; ok {
		var rows []struct {
			Replicas int     `json:"replicas"`
			Speedup  float64 `json:"speedup"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		best := -1
		for i, r := range rows {
			if best < 0 || r.Replicas > rows[best].Replicas {
				best = i
			}
		}
		if best >= 0 {
			put("e9_read_scaling_speedup", rows[best].Speedup)
		}
	}

	// E11: best striped-commit speedup over the single-latch baseline.
	if raw, ok := report["E11"]; ok {
		var rows []struct {
			Speedup float64
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E11: %w", err)
		}
		var best float64
		for _, r := range rows {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		put("e11_stripes_speedup", best)
	}

	// E12: batched-mixed throughput ratio over single-op round trips.
	if raw, ok := report["E12"]; ok {
		var rows []struct {
			Mode    string  `json:"mode"`
			Speedup float64 `json:"speedup"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E12: %w", err)
		}
		for _, r := range rows {
			if r.Mode == "batched-mixed" {
				put("e12_batch_speedup", r.Speedup)
				break
			}
		}
	}

	// E13: 1%-sampled tracing throughput relative to untraced (1.0 = free;
	// higher is better, so an overhead regression trips the gate).
	if raw, ok := report["E13"]; ok {
		var rows []struct {
			Sample   float64 `json:"Sample"`
			Overhead float64 `json:"Overhead"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E13: %w", err)
		}
		for _, r := range rows {
			if r.Sample == 0.01 {
				put("e13_trace_sampled_rel_tput", r.Overhead)
				break
			}
		}
	}

	// E14: server-side k-hop plan over client-looped per-hop round trips.
	if raw, ok := report["E14"]; ok {
		var rows []struct {
			Mode    string  `json:"mode"`
			Speedup float64 `json:"speedup"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E14: %w", err)
		}
		for _, r := range rows {
			if r.Mode == "server-khop" {
				put("e14_khop_pushdown_speedup", r.Speedup)
				break
			}
		}
	}

	// E15: auto-failover unavailability window, tracked as its inverse so
	// a widening window reads as a regression. The quorum-1 row is the
	// headline: that is the no-acknowledged-loss configuration.
	if raw, ok := report["E15"]; ok {
		var rows []struct {
			SyncReplicas int     `json:"sync_replicas"`
			RecoveriesPS float64 `json:"recoveries_per_sec"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E15: %w", err)
		}
		for _, r := range rows {
			if r.SyncReplicas == 1 {
				put("e15_failover_recoveries_per_sec", r.RecoveriesPS)
				break
			}
		}
	}

	// E16: partitioned write scale-up. The headline is aggregate commit/s
	// at 2 partitions over 1 partition with no cross-partition traffic —
	// the pure benefit of independent WAL/fsync streams; a drop means the
	// partition layer started taxing the disjoint fast path.
	if raw, ok := report["E16"]; ok {
		var rows []struct {
			Partitions int     `json:"partitions"`
			CrossPct   int     `json:"cross_pct"`
			ScaleupVs1 float64 `json:"scaleup_vs_1"`
		}
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, fmt.Errorf("E16: %w", err)
		}
		for _, r := range rows {
			if r.Partitions == 2 && r.CrossPct == 0 && r.ScaleupVs1 > 0 {
				put("e16_partition_write_scaleup", r.ScaleupVs1)
				break
			}
		}
	}

	if len(tf.Metrics) == 0 {
		return nil, fmt.Errorf("no headline metrics found in %s (need E2d/E9/E11/E12/E13/E14/E15/E16 rows)", path)
	}
	return tf, nil
}
