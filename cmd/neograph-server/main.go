// Command neograph-server serves a neograph database over TCP.
//
// Usage:
//
//	neograph-server -addr 127.0.0.1:7475 -dir /var/lib/neograph
//
// An empty -dir runs fully in memory. The server checkpoints and runs
// the version garbage collector in the background, and shuts down
// cleanly on SIGINT/SIGTERM.
//
// Replication: a primary additionally listens for replicas with
// -repl-addr; a replica points -replica-of at that address, streams the
// primary's WAL, and serves snapshot-isolated reads at its applied
// position (writes are redirected to the primary):
//
//	neograph-server -dir /var/lib/ng  -addr :7475 -repl-addr :7476
//	neograph-server -dir /var/lib/ng2 -addr :7575 -replica-of primary:7476
//
// Partitioning: a fleet can hash-partition the ID space across several
// replication groups. Every node gets the same -partition-peers map and
// its own -partition-id; partition p owns all IDs with id % count == p,
// and batches that span partitions commit atomically via two-phase
// commit driven by the partition that receives them:
//
//	neograph-server -dir /d/p0 -addr :7475 -repl-addr :7476 \
//	    -partition-id 0 -partition-peers '0=127.0.0.1:7475;1=127.0.0.1:7575'
//	neograph-server -dir /d/p1 -addr :7575 -repl-addr :7576 \
//	    -partition-id 1 -partition-peers '0=127.0.0.1:7475;1=127.0.0.1:7575'
//
// Observability: -log-level selects the structured-log floor (key=value
// records on stderr); -trace-sample enables distributed tracing (traced
// requests are readable as JSONL from /debug/traces on the -pprof-addr
// or -metrics-addr listener); -slow-op logs the full span tree of any
// traced request slower than the threshold.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neograph"
	"neograph/internal/cluster"
	"neograph/internal/metrics"
	"neograph/internal/partition"
	"neograph/internal/server"
	"neograph/internal/slog"
	"neograph/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7475", "listen address")
		dir         = flag.String("dir", "", "database directory (empty = in-memory)")
		rc          = flag.Bool("read-committed", false, "default to read committed instead of snapshot isolation")
		fcw         = flag.Bool("first-committer-wins", false, "use first-committer-wins conflict policy")
		noSync      = flag.Bool("no-sync", false, "disable commit WAL fsync entirely")
		noGroup     = flag.Bool("no-group-commit", false, "one fsync per commit instead of batched group commit")
		maxBatch    = flag.Int("commit-max-batch", 0, "queued committers at which a lingering group-commit leader flushes early (0 = default)")
		maxDelay    = flag.Duration("commit-max-delay", 0, "how long a group-commit leader waits for more committers (0 = flush immediately)")
		stripes     = flag.Int("commit-stripes", 0, "object-map/commit-validation stripes, rounded up to a power of two, max 256 (0 = GOMAXPROCS, 1 = single global latch)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof (and /metrics, /debug/traces) on this address (empty = disabled), e.g. 127.0.0.1:6060")
		metricsOn   = flag.String("metrics-addr", "", "serve Prometheus /metrics (and /debug/traces) on this address (empty = ride -pprof-addr if set)")
		maxInfl     = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests, excess rejected with code \"overloaded\" (0 = unlimited)")
		maxQueued   = flag.Int64("max-queued-bytes", 0, "admission control: max admitted request-frame bytes in flight (0 = unlimited)")
		gcEvery     = flag.Duration("gc-interval", 5*time.Second, "garbage collection interval")
		ckpEvery    = flag.Duration("checkpoint-interval", 30*time.Second, "checkpoint interval (persistent mode)")
		replAddr    = flag.String("repl-addr", "", "primary: stream the WAL to replicas on this address; replica: the address to ship from if promoted (bound at promotion, not before)")
		replicaOf   = flag.String("replica-of", "", "replica: stream the WAL from this primary replication address (read-only; promote with the 'promote' wire op)")
		syncReps    = flag.Int("sync-replicas", 0, "primary: acknowledge a commit only after this many replicas durably acked it (0 = async)")
		syncTmo     = flag.Duration("sync-timeout", 0, "primary: degrade a waiting commit to async after this long (0 = 1s default, negative = never)")
		drainGrace  = flag.Duration("drain-grace", 0, "how long shutdown waits for in-flight requests to finish before hard-closing (0 = 5s default)")
		nodeID      = flag.Uint64("node-id", 0, "cluster: this node's unique non-zero ID (election tie-break; lower wins); enables the self-driving cluster controller with -cluster-peers")
		clusterSelf = flag.String("cluster-self", "", "cluster: this node's client address as peers dial it (announced in cluster_status; default -addr)")
		clusterPeer = flag.String("cluster-peers", "", "cluster: comma-separated client addresses of every OTHER fleet member, including the current primary")
		suspectTmo  = flag.Duration("suspect-after", 0, "cluster: continuous stream outage before the primary is suspected (0 = 2s default)")
		electTmo    = flag.Duration("election-timeout", 0, "cluster: how long an election loser waits for the winner before re-electing (0 = 5s default)")
		probeEvery  = flag.Duration("cluster-probe-every", 0, "cluster: control-loop tick interval, jittered (0 = 500ms default)")
		partID      = flag.Uint("partition-id", 0, "partition: the hash partition this node's group owns (IDs with id % count == partition-id)")
		partPeers   = flag.String("partition-peers", "", "partition: the full fleet map 'id=addr,addr;id=addr,...' — client addresses of every partition's group, identical on every node; enables partitioned mode")
		partCount   = flag.Int("partition-count", 0, "partition: expected partition count; must match -partition-peers when both are given (sanity check only)")
		logLevel    = flag.String("log-level", "info", "log floor: debug, info, warn or error")
		traceSample = flag.Float64("trace-sample", 0, "head-sampling rate in [0,1] for traces rooted at this server; requests arriving with a client-minted trace context always record regardless")
		traceBuf    = flag.Int("trace-buffer", 0, "finished traces retained for /debug/traces (0 = 256)")
		slowOp      = flag.Duration("slow-op", 0, "log the full span tree of traced requests slower than this (0 = disabled)")
	)
	flag.Parse()

	lvl, err := slog.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := slog.New(os.Stderr, lvl)

	// Partition topology is fixed before Open: the database's ID
	// allocators stride by (partition-id, count) from the first
	// allocation, so the map cannot change under a live store.
	var topo *partition.Topology
	if *partPeers != "" {
		pm, err := partition.ParsePeers(*partPeers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *partCount != 0 && *partCount != pm.Count {
			fmt.Fprintf(os.Stderr, "-partition-count %d does not match -partition-peers (%d partitions)\n", *partCount, pm.Count)
			os.Exit(2)
		}
		if int(*partID) >= pm.Count {
			fmt.Fprintf(os.Stderr, "-partition-id %d out of range: -partition-peers defines partitions 0..%d\n", *partID, pm.Count-1)
			os.Exit(2)
		}
		topo = partition.NewTopology(pm)
	} else if *partCount > 1 {
		fmt.Fprintln(os.Stderr, "-partition-count > 1 requires -partition-peers (the coordinator must reach the other partitions)")
		os.Exit(2)
	}

	opts := neograph.Options{
		Dir:                *dir,
		DisableSyncCommits: *noSync,
		DisableGroupCommit: *noGroup,
		CommitMaxBatch:     *maxBatch,
		CommitMaxDelay:     *maxDelay,
		CommitStripes:      *stripes,
		GCInterval:         *gcEvery,
		CheckpointInterval: *ckpEvery,
		ReplicationAddr:    *replAddr,
		ReplicaOf:          *replicaOf,
		SyncReplicas:       *syncReps,
		SyncReplicaTimeout: *syncTmo,
		Logger:             logger,
	}
	if topo != nil {
		opts.PartitionID = int(*partID)
		opts.PartitionCount = topo.Count()
	}
	if *replicaOf != "" {
		// Cascading replication is unsupported, so a replica's -repl-addr
		// is deferred: the address it will ship from IF promoted. It is
		// announced to the cluster controller and bound by Promote, never
		// at open time.
		opts.ReplicationAddr = ""
	}
	if *rc {
		opts.Isolation = neograph.ReadCommitted
	}
	if *fcw {
		opts.Conflict = neograph.FirstCommitterWins
	}
	// One tracer backs every layer: requests arriving with a client-minted
	// trace context always record here, and -trace-sample additionally
	// head-samples untraced work server-side.
	tracer := trace.New(*traceSample, *traceBuf)
	opts.Tracer = tracer
	// One registry backs every /metrics mount. The DB-level samplers are
	// registered after Open; the server's own series at NewWithConfig.
	reg := metrics.NewRegistry()
	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers via its
		// blank import; keep this listener off the public address.
		http.Handle("/metrics", metrics.Handler(reg))
		http.Handle("/debug/traces", trace.Handler(tracer))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("debug listener up", "pprof", "http://"+*pprofAddr+"/debug/pprof/",
			"metrics", "http://"+*pprofAddr+"/metrics",
			"traces", "http://"+*pprofAddr+"/debug/traces")
	}
	if *metricsOn != "" && *metricsOn != *pprofAddr {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(reg))
		mux.Handle("/debug/traces", trace.Handler(tracer))
		go func() {
			if err := http.ListenAndServe(*metricsOn, mux); err != nil {
				logger.Error("metrics listener failed", "addr", *metricsOn, "err", err)
			}
		}()
		logger.Info("metrics listener up", "metrics", "http://"+*metricsOn+"/metrics",
			"traces", "http://"+*metricsOn+"/debug/traces")
	}

	db, err := neograph.Open(opts)
	if err != nil {
		logger.Error("open failed", "dir", *dir, "err", err)
		os.Exit(1)
	}
	server.RegisterDBMetrics(reg, db)
	srv, err := server.NewWithConfig(db, *addr, server.Config{
		DrainGrace:     *drainGrace,
		MaxInflight:    *maxInfl,
		MaxQueuedBytes: *maxQueued,
		Metrics:        reg,
		Tracer:         tracer,
		Logger:         logger.With("component", "server"),
		SlowOp:         *slowOp,
	})
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		db.Close()
		os.Exit(1)
	}
	mode := "in-memory"
	if *dir != "" {
		mode = *dir
	}
	logger.Info("neograph-server listening", "addr", srv.Addr(), "store", mode,
		"isolation", fmt.Sprint(opts.Isolation), "conflict", fmt.Sprint(opts.Conflict))
	switch {
	case db.IsReplica():
		logger.Info("running as replica (read-only; writes are redirected; promote via the 'promote' op)",
			"primary", *replicaOf)
	case *replAddr != "":
		repl := "async"
		if *syncReps > 0 {
			repl = fmt.Sprintf("sync quorum %d", *syncReps)
		}
		logger.Info("shipping WAL to replicas", "addr", db.ReplicationAddress(), "mode", repl)
	}

	var coord *partition.Coordinator
	if topo != nil && topo.Count() > 1 {
		// The coordinator runs on replicas too: a promoted replica
		// inherits the in-doubt resolver and decision repush duties
		// without a restart. Until promotion its write paths simply
		// reject, which is what a replica should do.
		coord = partition.NewCoordinator(uint32(*partID), topo, srv.Local(), db.AppliedLSN(),
			logger.With("component", "partition"))
		srv.SetPartition(coord, uint32(*partID), topo.Count())
		coord.Start()
		logger.Info("partitioned deployment", "partition", *partID, "of", topo.Count())
	}

	var ctrl *cluster.Controller
	if *nodeID != 0 {
		self := *clusterSelf
		if self == "" {
			self = srv.Addr()
		}
		selfRepl := *replAddr
		if selfRepl == "" && db.IsReplica() {
			// A replica that wins an election needs an address to ship
			// from; without -repl-addr it can follow and re-seed but
			// never serve as primary.
			logger.Warn("cluster controller without -repl-addr: this node cannot be promoted")
		}
		if selfRepl == "" {
			selfRepl = db.ReplicationAddress()
		}
		var peers []string
		for _, p := range strings.Split(*clusterPeer, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		copts := cluster.Options{
			NodeID:          *nodeID,
			SelfAddr:        self,
			SelfReplAddr:    selfRepl,
			Peers:           peers,
			SuspectAfter:    *suspectTmo,
			ElectionTimeout: *electTmo,
			ProbeEvery:      *probeEvery,
			Metrics:         reg,
			Tracer:          tracer,
			Logger:          logger,
		}
		if topo != nil {
			copts.PartitionID = uint32(*partID)
			pm := topo.Map()
			copts.Partitions = &pm
		}
		ctrl, err = cluster.New(db, copts)
		if err != nil {
			logger.Error("cluster controller", "err", err)
			srv.Close()
			db.Close()
			os.Exit(1)
		}
		srv.SetClusterInfo(func() any { return ctrl.NodeStatus() })
		ctrl.Start()
		logger.Info("self-driving cluster controller up",
			"node", *nodeID, "self", self, "repl", selfRepl, "peers", *clusterPeer)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down")
	if ctrl != nil {
		ctrl.Stop()
	}
	if coord != nil {
		coord.Close()
	}
	if err := srv.Close(); err != nil {
		logger.Warn("server close", "err", err)
	}
	if err := db.Close(); err != nil {
		logger.Warn("db close", "err", err)
	}
}
