// Command neograph-server serves a neograph database over TCP.
//
// Usage:
//
//	neograph-server -addr 127.0.0.1:7475 -dir /var/lib/neograph
//
// An empty -dir runs fully in memory. The server checkpoints and runs
// the version garbage collector in the background, and shuts down
// cleanly on SIGINT/SIGTERM.
//
// Replication: a primary additionally listens for replicas with
// -repl-addr; a replica points -replica-of at that address, streams the
// primary's WAL, and serves snapshot-isolated reads at its applied
// position (writes are redirected to the primary):
//
//	neograph-server -dir /var/lib/ng  -addr :7475 -repl-addr :7476
//	neograph-server -dir /var/lib/ng2 -addr :7575 -replica-of primary:7476
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neograph"
	"neograph/internal/metrics"
	"neograph/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7475", "listen address")
		dir        = flag.String("dir", "", "database directory (empty = in-memory)")
		rc         = flag.Bool("read-committed", false, "default to read committed instead of snapshot isolation")
		fcw        = flag.Bool("first-committer-wins", false, "use first-committer-wins conflict policy")
		noSync     = flag.Bool("no-sync", false, "disable commit WAL fsync entirely")
		noGroup    = flag.Bool("no-group-commit", false, "one fsync per commit instead of batched group commit")
		maxBatch   = flag.Int("commit-max-batch", 0, "queued committers at which a lingering group-commit leader flushes early (0 = default)")
		maxDelay   = flag.Duration("commit-max-delay", 0, "how long a group-commit leader waits for more committers (0 = flush immediately)")
		stripes    = flag.Int("commit-stripes", 0, "object-map/commit-validation stripes, rounded up to a power of two, max 256 (0 = GOMAXPROCS, 1 = single global latch)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof (and /metrics) on this address (empty = disabled), e.g. 127.0.0.1:6060")
		metricsOn  = flag.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = ride -pprof-addr if set)")
		maxInfl    = flag.Int("max-inflight", 0, "admission control: max concurrently executing requests, excess rejected with code \"overloaded\" (0 = unlimited)")
		maxQueued  = flag.Int64("max-queued-bytes", 0, "admission control: max admitted request-frame bytes in flight (0 = unlimited)")
		gcEvery    = flag.Duration("gc-interval", 5*time.Second, "garbage collection interval")
		ckpEvery   = flag.Duration("checkpoint-interval", 30*time.Second, "checkpoint interval (persistent mode)")
		replAddr   = flag.String("repl-addr", "", "primary: stream the WAL to replicas on this address")
		replicaOf  = flag.String("replica-of", "", "replica: stream the WAL from this primary replication address (read-only; promote with the 'promote' wire op)")
		syncReps   = flag.Int("sync-replicas", 0, "primary: acknowledge a commit only after this many replicas durably acked it (0 = async)")
		syncTmo    = flag.Duration("sync-timeout", 0, "primary: degrade a waiting commit to async after this long (0 = 1s default, negative = never)")
		drainGrace = flag.Duration("drain-grace", 0, "how long shutdown waits for in-flight requests to finish before hard-closing (0 = 5s default)")
	)
	flag.Parse()

	opts := neograph.Options{
		Dir:                *dir,
		DisableSyncCommits: *noSync,
		DisableGroupCommit: *noGroup,
		CommitMaxBatch:     *maxBatch,
		CommitMaxDelay:     *maxDelay,
		CommitStripes:      *stripes,
		GCInterval:         *gcEvery,
		CheckpointInterval: *ckpEvery,
		ReplicationAddr:    *replAddr,
		ReplicaOf:          *replicaOf,
		SyncReplicas:       *syncReps,
		SyncReplicaTimeout: *syncTmo,
	}
	if *rc {
		opts.Isolation = neograph.ReadCommitted
	}
	if *fcw {
		opts.Conflict = neograph.FirstCommitterWins
	}
	// One registry backs every /metrics mount. The DB-level samplers are
	// registered after Open; the server's own series at NewWithConfig.
	reg := metrics.NewRegistry()
	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers via its
		// blank import; keep this listener off the public address.
		http.Handle("/metrics", metrics.Handler(reg))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/, metrics on http://%s/metrics\n", *pprofAddr, *pprofAddr)
	}
	if *metricsOn != "" && *metricsOn != *pprofAddr {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(reg))
		go func() {
			if err := http.ListenAndServe(*metricsOn, mux); err != nil {
				log.Printf("metrics listener: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsOn)
	}

	db, err := neograph.Open(opts)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	server.RegisterDBMetrics(reg, db)
	srv, err := server.NewWithConfig(db, *addr, server.Config{
		DrainGrace:     *drainGrace,
		MaxInflight:    *maxInfl,
		MaxQueuedBytes: *maxQueued,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	mode := "in-memory"
	if *dir != "" {
		mode = *dir
	}
	fmt.Printf("neograph-server listening on %s (store: %s, isolation: %v, conflict: %v)\n",
		srv.Addr(), mode, opts.Isolation, opts.Conflict)
	switch {
	case db.IsReplica():
		fmt.Printf("replica of %s (read-only; writes are redirected; promote via the 'promote' op)\n", *replicaOf)
	case *replAddr != "":
		mode := "async"
		if *syncReps > 0 {
			mode = fmt.Sprintf("sync quorum %d", *syncReps)
		}
		fmt.Printf("shipping WAL to replicas on %s (%s)\n", db.ReplicationAddress(), mode)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down...")
	if err := srv.Close(); err != nil {
		log.Printf("server close: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Printf("db close: %v", err)
	}
}
