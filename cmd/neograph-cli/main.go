// Command neograph-cli is an interactive shell for a neograph server.
//
// Usage:
//
//	neograph-cli -addr 127.0.0.1:7475
//
// Commands (ids are decimal numbers; values are int, float, true/false or
// "quoted strings"):
//
//	begin [si|rc]              open a transaction
//	commit | abort             finish it
//	create [Label ...]         create a node
//	get <id>                   show a node
//	set <id> <key> <value>     set a node property
//	label <id> +Name | -Name   add/remove a label
//	del <id> | detach <id>     delete a node
//	rel <type> <from> <to>     create a relationship
//	rels <id> [out|in|both]    list relationships
//	nbrs <id> [out|in|both]    list neighbors
//	find <Label>               nodes by label
//	where <key> <value>        nodes by property
//	all                        all node ids
//	stats | gc | checkpoint    admin
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neograph"
	"neograph/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "server address")
	flag.Parse()

	cl, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		fmt.Fprintf(os.Stderr, "ping: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("connected to %s; type 'help' for commands\n", *addr)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("neograph> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := run(cl, line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

func run(cl *server.Client, line string) error {
	args := tokenize(line)
	switch args[0] {
	case "help":
		fmt.Println("begin [si|rc] | commit | abort | create [Label..] | get <id> | set <id> <k> <v>")
		fmt.Println("label <id> +L|-L | del <id> | detach <id> | rel <type> <from> <to> | rels <id> [dir]")
		fmt.Println("nbrs <id> [dir] | find <Label> | where <k> <v> | all | stats | gc | checkpoint | quit")
		return nil
	case "begin":
		iso := "si"
		if len(args) > 1 {
			iso = args[1]
		}
		return cl.Begin(iso)
	case "commit":
		return cl.Commit()
	case "abort":
		return cl.Abort()
	case "create":
		id, err := cl.CreateNode(args[1:], nil)
		if err != nil {
			return err
		}
		fmt.Printf("node %d\n", id)
		return nil
	case "get":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		n, err := cl.GetNode(id)
		if err != nil {
			return err
		}
		fmt.Printf("node %d labels=%v props=%s\n", n.ID, n.Labels, n.Props)
		return nil
	case "set":
		if len(args) < 4 {
			return fmt.Errorf("usage: set <id> <key> <value>")
		}
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return cl.SetNodeProp(id, args[2], parseValue(args[3]))
	case "label":
		if len(args) < 3 || (args[2][0] != '+' && args[2][0] != '-') {
			return fmt.Errorf("usage: label <id> +Name|-Name")
		}
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		if args[2][0] == '+' {
			return cl.AddLabel(id, args[2][1:])
		}
		return cl.RemoveLabel(id, args[2][1:])
	case "del":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return cl.DeleteNode(id)
	case "detach":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return cl.DetachDeleteNode(id)
	case "rel":
		if len(args) < 4 {
			return fmt.Errorf("usage: rel <type> <from> <to>")
		}
		from, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return err
		}
		to, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return err
		}
		id, err := cl.CreateRel(args[1], from, to, nil)
		if err != nil {
			return err
		}
		fmt.Printf("rel %d\n", id)
		return nil
	case "rels":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		dir := "both"
		if len(args) > 2 {
			dir = args[2]
		}
		rels, err := cl.Relationships(id, dir)
		if err != nil {
			return err
		}
		for _, r := range rels {
			fmt.Printf("rel %d: (%d)-[:%s]->(%d) %s\n", r.ID, r.Start, r.Type, r.End, r.Props)
		}
		fmt.Printf("%d relationship(s)\n", len(rels))
		return nil
	case "nbrs":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		dir := "both"
		if len(args) > 2 {
			dir = args[2]
		}
		ids, err := cl.Neighbors(id, dir)
		if err != nil {
			return err
		}
		fmt.Println(ids)
		return nil
	case "find":
		if len(args) < 2 {
			return fmt.Errorf("usage: find <Label>")
		}
		ids, err := cl.NodesByLabel(args[1])
		if err != nil {
			return err
		}
		fmt.Println(ids)
		return nil
	case "where":
		if len(args) < 3 {
			return fmt.Errorf("usage: where <key> <value>")
		}
		ids, err := cl.NodesByProperty(args[1], parseValue(args[2]))
		if err != nil {
			return err
		}
		fmt.Println(ids)
		return nil
	case "all":
		ids, err := cl.AllNodes()
		if err != nil {
			return err
		}
		fmt.Println(ids)
		return nil
	case "stats":
		info, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Println(string(info))
		return nil
	case "gc":
		info, err := cl.GC()
		if err != nil {
			return err
		}
		fmt.Println(string(info))
		return nil
	case "checkpoint":
		return cl.Checkpoint()
	default:
		return fmt.Errorf("unknown command %q (try 'help')", args[0])
	}
}

func parseID(args []string, i int) (uint64, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing id")
	}
	return strconv.ParseUint(args[i], 10, 64)
}

// parseValue guesses the value type: int, float, bool, else string
// (quotes stripped).
func parseValue(s string) neograph.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return neograph.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return neograph.Float(f)
	}
	if s == "true" || s == "false" {
		return neograph.Bool(s == "true")
	}
	return neograph.String(strings.Trim(s, `"`))
}

// tokenize splits on spaces but keeps "quoted strings" whole.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
