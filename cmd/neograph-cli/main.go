// Command neograph-cli is an interactive shell for a neograph server or
// a replicated fleet. It speaks the public neograph/client SDK: every
// command runs under a deadline, and with -replicas the shell becomes a
// topology-aware pool session — reads route to replicas (read-your-writes
// preserved via the session's causality token), writes to the primary,
// and the shell follows a failover promotion automatically.
//
// Usage:
//
//	neograph-cli -addr 127.0.0.1:7475
//	neograph-cli -addr 127.0.0.1:7475 -replicas 127.0.0.1:7575,127.0.0.1:7675
//
// Commands (ids are decimal numbers; values are int, float, true/false or
// "quoted strings"):
//
//	begin [si|rc]              open a transaction (single-server mode)
//	commit | abort             finish it
//	create [Label ...]         create a node
//	get <id>                   show a node
//	set <id> <key> <value>     set a node property
//	label <id> +Name | -Name   add/remove a label
//	del <id> | detach <id>     delete a node
//	rel <type> <from> <to>     create a relationship
//	rels <id> [out|in|both]    list relationships
//	nbrs <id> [out|in|both]    list neighbors
//	find <Label>               nodes by label
//	where <key> <value>        nodes by property
//	all                        all node ids
//	stats | gc | checkpoint    admin
//	status                     replication role and progress
//	promote [repl-addr]        promote a replica (single-server mode)
//	quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"neograph"
	"neograph/client"
)

// shell routes commands to a single client session or a fleet pool.
type shell struct {
	cl      *client.Client // single-server mode (nil in pool mode)
	pool    *client.Pool   // fleet mode (nil in single mode)
	timeout time.Duration
}

// token is the shell's causality token: reads through the pool always
// observe the shell's own earlier writes, even from a lagging replica.
const token = "cli"

func (s *shell) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), s.timeout)
}

// read runs fn on a read session (a replica when pooled).
func (s *shell) read(fn func(ctx context.Context, c *client.Client) error) error {
	ctx, cancel := s.ctx()
	defer cancel()
	if s.pool != nil {
		return s.pool.Read(ctx, token, func(c *client.Client) error { return fn(ctx, c) })
	}
	return fn(ctx, s.cl)
}

// write runs fn on a primary session.
func (s *shell) write(fn func(ctx context.Context, c *client.Client) error) error {
	ctx, cancel := s.ctx()
	defer cancel()
	if s.pool != nil {
		return s.pool.Write(ctx, token, func(c *client.Client) error { return fn(ctx, c) })
	}
	return fn(ctx, s.cl)
}

// single runs fn on the dedicated session; some commands (transactions,
// promote) need one pinned server and are unavailable in pool mode.
func (s *shell) single(fn func(ctx context.Context, c *client.Client) error) error {
	if s.cl == nil {
		return fmt.Errorf("this command needs a single-server session (drop -replicas)")
	}
	ctx, cancel := s.ctx()
	defer cancel()
	return fn(ctx, s.cl)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "primary server address")
	replicas := flag.String("replicas", "", "comma-separated replica addresses (enables pooled routing)")
	policy := flag.String("read-policy", "least-lag", "replica read routing: least-lag or round-robin")
	timeout := flag.Duration("timeout", 10*time.Second, "per-command deadline")
	flag.Parse()

	sh := &shell{timeout: *timeout}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	if *replicas != "" {
		var reps []string
		for _, r := range strings.Split(*replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				reps = append(reps, r)
			}
		}
		var pol client.Policy
		switch *policy {
		case "least-lag":
			pol = client.LeastLag
		case "round-robin":
			pol = client.RoundRobin
		default:
			fmt.Fprintf(os.Stderr, "bad -read-policy %q (want least-lag or round-robin)\n", *policy)
			os.Exit(2)
		}
		pool, err := client.OpenPool(ctx, client.PoolConfig{
			Primary: *addr, Replicas: reps, Policy: pol,
		})
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "connect: %v\n", err)
			os.Exit(1)
		}
		defer pool.Close()
		sh.pool = pool
		fmt.Printf("pooled fleet: primary %s + %d replica(s); type 'help' for commands\n",
			pool.PrimaryAddr(), len(reps))
	} else {
		cl, err := client.Dial(ctx, *addr)
		if err == nil {
			err = cl.Ping(ctx)
		}
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "connect: %v\n", err)
			os.Exit(1)
		}
		defer cl.Close()
		sh.cl = cl
		fmt.Printf("connected to %s (proto v%d); type 'help' for commands\n", *addr, cl.ServerProto())
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("neograph> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := run(sh, line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

func run(sh *shell, line string) error {
	args := tokenize(line)
	switch args[0] {
	case "help":
		fmt.Println("begin [si|rc] | commit | abort | create [Label..] | get <id> | set <id> <k> <v>")
		fmt.Println("label <id> +L|-L | del <id> | detach <id> | rel <type> <from> <to> | rels <id> [dir]")
		fmt.Println("nbrs <id> [dir] | find <Label> | where <k> <v> | all | stats | gc | checkpoint")
		fmt.Println("status | promote [repl-addr] | quit")
		return nil
	case "begin":
		iso := "si"
		if len(args) > 1 {
			iso = args[1]
		}
		return sh.single(func(ctx context.Context, c *client.Client) error {
			return c.Begin(ctx, iso)
		})
	case "commit":
		return sh.single(func(ctx context.Context, c *client.Client) error {
			return c.Commit(ctx)
		})
	case "abort":
		return sh.single(func(ctx context.Context, c *client.Client) error {
			return c.Abort(ctx)
		})
	case "create":
		return sh.write(func(ctx context.Context, c *client.Client) error {
			id, err := c.CreateNode(ctx, args[1:], nil)
			if err != nil {
				return err
			}
			fmt.Printf("node %d\n", id)
			return nil
		})
	case "get":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return sh.read(func(ctx context.Context, c *client.Client) error {
			n, err := c.GetNode(ctx, id)
			if err != nil {
				return err
			}
			fmt.Printf("node %d labels=%v props=%s\n", n.ID, n.Labels, n.Props)
			return nil
		})
	case "set":
		if len(args) < 4 {
			return fmt.Errorf("usage: set <id> <key> <value>")
		}
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return sh.write(func(ctx context.Context, c *client.Client) error {
			return c.SetNodeProp(ctx, id, args[2], parseValue(args[3]))
		})
	case "label":
		if len(args) < 3 || (args[2][0] != '+' && args[2][0] != '-') {
			return fmt.Errorf("usage: label <id> +Name|-Name")
		}
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return sh.write(func(ctx context.Context, c *client.Client) error {
			if args[2][0] == '+' {
				return c.AddLabel(ctx, id, args[2][1:])
			}
			return c.RemoveLabel(ctx, id, args[2][1:])
		})
	case "del":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return sh.write(func(ctx context.Context, c *client.Client) error {
			return c.DeleteNode(ctx, id)
		})
	case "detach":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		return sh.write(func(ctx context.Context, c *client.Client) error {
			return c.DetachDeleteNode(ctx, id)
		})
	case "rel":
		if len(args) < 4 {
			return fmt.Errorf("usage: rel <type> <from> <to>")
		}
		from, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return err
		}
		to, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return err
		}
		return sh.write(func(ctx context.Context, c *client.Client) error {
			id, err := c.CreateRel(ctx, args[1], from, to, nil)
			if err != nil {
				return err
			}
			fmt.Printf("rel %d\n", id)
			return nil
		})
	case "rels":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		dir := "both"
		if len(args) > 2 {
			dir = args[2]
		}
		return sh.read(func(ctx context.Context, c *client.Client) error {
			rels, err := c.Relationships(ctx, id, dir)
			if err != nil {
				return err
			}
			for _, r := range rels {
				fmt.Printf("rel %d: (%d)-[:%s]->(%d) %s\n", r.ID, r.Start, r.Type, r.End, r.Props)
			}
			fmt.Printf("%d relationship(s)\n", len(rels))
			return nil
		})
	case "nbrs":
		id, err := parseID(args, 1)
		if err != nil {
			return err
		}
		dir := "both"
		if len(args) > 2 {
			dir = args[2]
		}
		return sh.read(func(ctx context.Context, c *client.Client) error {
			ids, err := c.Neighbors(ctx, id, dir)
			if err != nil {
				return err
			}
			fmt.Println(ids)
			return nil
		})
	case "find":
		if len(args) < 2 {
			return fmt.Errorf("usage: find <Label>")
		}
		return sh.read(func(ctx context.Context, c *client.Client) error {
			ids, err := c.NodesByLabel(ctx, args[1])
			if err != nil {
				return err
			}
			fmt.Println(ids)
			return nil
		})
	case "where":
		if len(args) < 3 {
			return fmt.Errorf("usage: where <key> <value>")
		}
		return sh.read(func(ctx context.Context, c *client.Client) error {
			ids, err := c.NodesByProperty(ctx, args[1], parseValue(args[2]))
			if err != nil {
				return err
			}
			fmt.Println(ids)
			return nil
		})
	case "all":
		return sh.read(func(ctx context.Context, c *client.Client) error {
			ids, err := c.AllNodes(ctx)
			if err != nil {
				return err
			}
			fmt.Println(ids)
			return nil
		})
	case "stats":
		return sh.read(func(ctx context.Context, c *client.Client) error {
			info, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			fmt.Println(string(info))
			return nil
		})
	case "status":
		// Diagnostics bypass routing and the read-your-writes gate: an
		// operator checking on a lagging replica must not be blocked BY
		// the lag. Pool mode reports every fleet member.
		if sh.pool != nil {
			ctx, cancel := sh.ctx()
			defer cancel()
			for _, hs := range sh.pool.FleetStatus(ctx) {
				if hs.Err != nil {
					fmt.Printf("%s: unreachable (%v)\n", hs.Addr, hs.Err)
					continue
				}
				st := hs.Status
				fmt.Printf("%s: role=%s durable=%d applied=%d epoch=%d\n",
					hs.Addr, st.Role, st.DurableLSN, st.AppliedLSN, st.Epoch)
			}
			return nil
		}
		return sh.single(func(ctx context.Context, c *client.Client) error {
			st, err := c.ReplStatus(ctx)
			if err != nil {
				return err
			}
			fmt.Printf("%s: role=%s durable=%d applied=%d epoch=%d\n",
				c.RemoteAddr(), st.Role, st.DurableLSN, st.AppliedLSN, st.Epoch)
			return nil
		})
	case "gc":
		return sh.write(func(ctx context.Context, c *client.Client) error {
			info, err := c.GC(ctx)
			if err != nil {
				return err
			}
			fmt.Println(string(info))
			return nil
		})
	case "checkpoint":
		return sh.write(func(ctx context.Context, c *client.Client) error {
			return c.Checkpoint(ctx)
		})
	case "promote":
		replAddr := ""
		if len(args) > 1 {
			replAddr = args[1]
		}
		return sh.single(func(ctx context.Context, c *client.Client) error {
			st, err := c.Promote(ctx, replAddr)
			if err != nil {
				return err
			}
			fmt.Printf("promoted: role=%s epoch=%d shipping=%s\n", st.Role, st.Epoch, st.ReplicationAddr)
			return nil
		})
	default:
		return fmt.Errorf("unknown command %q (try 'help')", args[0])
	}
}

func parseID(args []string, i int) (uint64, error) {
	if len(args) <= i {
		return 0, fmt.Errorf("missing id")
	}
	return strconv.ParseUint(args[i], 10, 64)
}

// parseValue guesses the value type: int, float, bool, else string
// (quotes stripped).
func parseValue(s string) neograph.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return neograph.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return neograph.Float(f)
	}
	if s == "true" || s == "false" {
		return neograph.Bool(s == "true")
	}
	return neograph.String(strings.Trim(s, `"`))
}

// tokenize splits on spaces but keeps "quoted strings" whole.
func tokenize(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range line {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
