package neograph

import "neograph/internal/value"

// Value is a typed property value: null, bool, int64, float64, string,
// bytes, or a list of values. Values are immutable.
type Value = value.Value

// Props is a property map from key name to value.
type Props = value.Map

// Kind enumerates value types.
type Kind = value.Kind

// Value kinds.
const (
	KindNull   = value.KindNull
	KindBool   = value.KindBool
	KindInt    = value.KindInt
	KindFloat  = value.KindFloat
	KindString = value.KindString
	KindBytes  = value.KindBytes
	KindList   = value.KindList
)

// Null is the absent value; assigning it through SetNodeProps removes the
// key.
var Null = value.Null

// Bool wraps a boolean.
func Bool(b bool) Value { return value.Bool(b) }

// Int wraps a 64-bit integer.
func Int(i int64) Value { return value.Int(i) }

// Float wraps a 64-bit float.
func Float(f float64) Value { return value.Float(f) }

// String wraps a string.
func String(s string) Value { return value.String(s) }

// Bytes wraps (a copy of) a byte slice.
func Bytes(b []byte) Value { return value.Bytes(b) }

// List wraps (a copy of) a value list.
func List(vs ...Value) Value { return value.List(vs...) }

// Of converts a native Go value (bool, integers, floats, string, []byte,
// []Value, nil) to a Value; it panics on unsupported types.
func Of(v any) Value { return value.Of(v) }
